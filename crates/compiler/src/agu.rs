//! Memory-map construction and AGU program synthesis.
//!
//! The compiler decides where every data set lives in off-chip memory,
//! then derives the deterministic address patterns each AGU class must
//! support for every phase. The pattern descriptors are handed to the
//! hardware generator, which reduces the template AGU (Fig. 6) to exactly
//! this pattern set.

use crate::config::CompilerConfig;
use crate::folding::{FoldingPlan, PhaseKind};
use crate::tiling::{plan_tiling, TilePlan};
use crate::CompileError;
use deepburning_components::AguPattern;
use deepburning_model::{LayerKind, Network, NetworkError, Shape};
use std::collections::BTreeMap;

/// Where a (versioned) activation blob lives in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlobPlace {
    /// The network input segment.
    Input,
    /// The network output segment.
    Output,
    /// A slot inside the `spill` segment; the word offset within the
    /// segment is `slot × SpillPlan::slot_words`.
    Spill(u64),
}

/// Liveness-driven slot assignment for spilled inter-layer activations.
///
/// Every production of a blob is treated as a fresh version (in-place
/// layers read version *v* and write version *v+1*), and each spilled
/// version gets a slot that stays reserved until its last consumer has
/// run. This is what makes the spill segment's double buffering real:
/// a producer never writes into the slot a consumer (or its own input
/// refetch) is still reading. The final version of each network output
/// blob lives in the `output` segment instead — the last layer's
/// write-back used to land in `spill`, leaving `output` permanently
/// stale.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpillPlan {
    /// Words per slot (the largest blob, aligned to the port width).
    pub slot_words: u64,
    /// Number of slots the `spill` segment provides.
    pub slots: u64,
    /// Per layer: each bottom blob and where it is fetched from.
    pub sources: BTreeMap<String, Vec<(String, BlobPlace)>>,
    /// Per layer: the top blob and where its write-back lands.
    pub dest: BTreeMap<String, (String, BlobPlace)>,
}

impl SpillPlan {
    /// Word offset of `place` within its segment.
    pub fn place_offset(&self, place: BlobPlace) -> u64 {
        match place {
            BlobPlace::Input | BlobPlace::Output => 0,
            BlobPlace::Spill(slot) => slot * self.slot_words,
        }
    }
}

/// Computes the spill-slot plan for a network (see [`SpillPlan`]).
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn plan_spill_slots(net: &Network, cfg: &CompilerConfig) -> Result<SpillPlan, NetworkError> {
    let shapes = net.infer_shapes()?;
    let align = cfg.port_width_words.max(1) as u64;
    let largest = shapes
        .values()
        .map(|s| s.elements() as u64)
        .max()
        .unwrap_or(1);
    let slot_words = largest.max(1).div_ceil(align) * align;

    // Pass 1: version every blob production and record liveness.
    struct Rec {
        last_use: usize,
        place: Option<BlobPlace>,
    }
    let mut cur: BTreeMap<String, usize> = BTreeMap::new();
    let mut recs: BTreeMap<(String, usize), Rec> = BTreeMap::new();
    // Per layer: resolved (blob, version) keys for bottoms and top.
    let mut layer_bottoms: Vec<(String, Vec<(String, usize)>)> = Vec::new();
    let mut layer_top: Vec<(String, Option<(String, usize)>)> = Vec::new();
    for (idx, layer) in net.layers().iter().enumerate() {
        let is_input = matches!(layer.kind, LayerKind::Input { .. });
        let mut bots = Vec::new();
        if !is_input {
            for b in &layer.bottoms {
                let ver = cur.get(b).copied().unwrap_or(0);
                let rec = recs.entry((b.clone(), ver)).or_insert(Rec {
                    last_use: idx,
                    place: None,
                });
                rec.last_use = idx;
                bots.push((b.clone(), ver));
            }
        }
        let mut top_key = None;
        for t in &layer.tops {
            let ver = cur.get(t).map(|v| v + 1).unwrap_or(0);
            cur.insert(t.clone(), ver);
            recs.insert(
                (t.clone(), ver),
                Rec {
                    last_use: idx,
                    place: if is_input {
                        Some(BlobPlace::Input)
                    } else {
                        None
                    },
                },
            );
            if top_key.is_none() {
                top_key = Some((t.clone(), ver));
            }
        }
        layer_bottoms.push((layer.name.clone(), bots));
        layer_top.push((layer.name.clone(), if is_input { None } else { top_key }));
    }
    // The final version of each output blob lands in the output segment.
    for out in net.output_blobs() {
        if let Some(&ver) = cur.get(&out) {
            if let Some(rec) = recs.get_mut(&(out.clone(), ver)) {
                if rec.place.is_none() {
                    rec.place = Some(BlobPlace::Output);
                }
            }
        }
    }

    // Pass 2: greedy slot allocation in layer order; a slot frees once its
    // blob's last consumer has run.
    let mut active: Vec<(u64, usize)> = Vec::new(); // (slot, last_use)
    let mut free: Vec<u64> = Vec::new();
    let mut next_slot = 0u64;
    for (idx, layer) in net.layers().iter().enumerate() {
        active.retain(|&(slot, last_use)| {
            if last_use < idx {
                free.push(slot);
                false
            } else {
                true
            }
        });
        for t in &layer.tops {
            let ver = match layer_top[idx].1 {
                Some((ref name, ver)) if name == t => ver,
                _ => continue,
            };
            let rec = recs.get_mut(&(t.clone(), ver)).expect("recorded above");
            if rec.place.is_none() {
                free.sort_unstable();
                let slot = if let Some(s) = free.first().copied() {
                    free.remove(0);
                    s
                } else {
                    let s = next_slot;
                    next_slot += 1;
                    s
                };
                rec.place = Some(BlobPlace::Spill(slot));
                active.push((slot, rec.last_use));
            }
        }
    }
    let slots = active
        .iter()
        .map(|&(s, _)| s + 1)
        .chain(free.iter().map(|&s| s + 1))
        .max()
        .unwrap_or(0)
        .max(2);

    // Resolve per-layer source/dest places.
    let place_of = |key: &(String, usize)| -> BlobPlace {
        recs.get(key)
            .and_then(|r| r.place)
            .unwrap_or(BlobPlace::Spill(0))
    };
    let mut sources = BTreeMap::new();
    let mut dest = BTreeMap::new();
    for (i, (lname, bots)) in layer_bottoms.iter().enumerate() {
        sources.insert(
            lname.clone(),
            bots.iter()
                .map(|k| (k.0.clone(), place_of(k)))
                .collect::<Vec<_>>(),
        );
        if let (_, Some(top_key)) = &layer_top[i] {
            dest.insert(lname.clone(), (top_key.0.clone(), place_of(top_key)));
        }
    }
    Ok(SpillPlan {
        slot_words,
        slots,
        sources,
        dest,
    })
}

/// What a DRAM segment holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// The network's input feature data.
    Input,
    /// Trained weights of one layer.
    Weights,
    /// Spill space for inter-layer activations.
    Activations,
    /// The network output.
    Output,
}

/// One region of the off-chip memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment name (layer name for weights, `input`/`spill`/`output`).
    pub name: String,
    /// Word offset in DRAM.
    pub offset: u64,
    /// Length in words.
    pub len_words: u64,
    /// Content class.
    pub kind: SegmentKind,
}

/// The DRAM layout the ARM core prepares before starting the accelerator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryMap {
    /// Segments in ascending address order.
    pub segments: Vec<Segment>,
}

impl MemoryMap {
    /// Finds a segment by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Total mapped words.
    pub fn total_words(&self) -> u64 {
        self.segments.iter().map(|s| s.len_words).sum()
    }

    /// Whether segments are disjoint and sorted — the map's invariant.
    pub fn is_consistent(&self) -> bool {
        self.segments
            .windows(2)
            .all(|w| w[0].offset + w[0].len_words <= w[1].offset)
    }
}

/// Builds the memory map: input, per-layer weights, activation spill,
/// output — each aligned to the port width.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn build_memory_map(net: &Network, cfg: &CompilerConfig) -> Result<MemoryMap, NetworkError> {
    let stats = deepburning_model::network_stats(net)?;
    let align = cfg.port_width_words.max(1) as u64;
    let round = |v: u64| v.div_ceil(align) * align;
    let mut segments = Vec::new();
    let mut cursor = 0u64;
    let mut push = |name: String, len: u64, kind: SegmentKind, cursor: &mut u64| {
        let len = round(len.max(1));
        segments.push(Segment {
            name,
            offset: *cursor,
            len_words: len,
            kind,
        });
        *cursor += len;
    };
    push(
        "input".into(),
        net.input_shape().elements() as u64,
        SegmentKind::Input,
        &mut cursor,
    );
    for layer in net.layers() {
        if layer.kind.has_weights() {
            let w = stats
                .layer(&layer.name)
                .map(|s| s.weights)
                .unwrap_or_default();
            push(layer.name.clone(), w, SegmentKind::Weights, &mut cursor);
        }
    }
    // Spill region: one slot per live inter-layer blob (at least two, so
    // a producer/consumer pair always ping-pongs), sized by the liveness
    // plan rather than a flat "largest × 2" guess.
    let spill = plan_spill_slots(net, cfg)?;
    push(
        "spill".into(),
        spill.slots * spill.slot_words,
        SegmentKind::Activations,
        &mut cursor,
    );
    let out_words = net.output_shape()?.elements() as u64;
    push("output".into(), out_words, SegmentKind::Output, &mut cursor);
    Ok(MemoryMap { segments })
}

/// The AGU programs of one phase: patterns per AGU class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AguProgram {
    /// Phase id this program belongs to.
    pub phase: usize,
    /// Main AGU (DRAM ↔ buffer) patterns.
    pub main: Vec<AguPattern>,
    /// Transfer direction per `main` pattern: `true` for DRAM writes
    /// (spill/output write-back), `false` for fetches. The top level
    /// turns this into the per-pattern `dram_we` mask — without it every
    /// main transaction, reads included, strobed the DRAM write enable.
    pub main_write: Vec<bool>,
    /// Data AGU (feature buffer → datapath) patterns.
    pub data: Vec<AguPattern>,
    /// Weight AGU (weight buffer → datapath) patterns.
    pub weight: Vec<AguPattern>,
}

impl AguProgram {
    /// Total addresses issued by all patterns of this program.
    pub fn footprint(&self) -> u64 {
        self.main
            .iter()
            .chain(&self.data)
            .chain(&self.weight)
            .map(AguPattern::footprint)
            .sum()
    }
}

/// Per-layer tile plans for the layers that stream spatial windows.
pub fn plan_layer_tiling(
    net: &Network,
    cfg: &CompilerConfig,
) -> Result<BTreeMap<String, TilePlan>, NetworkError> {
    let shapes = net.infer_shapes()?;
    let mut plans = BTreeMap::new();
    for layer in net.layers() {
        let (k, s) = match &layer.kind {
            LayerKind::Convolution(p) => (p.kernel_size, p.stride),
            LayerKind::Pooling(p) => (p.kernel_size, p.stride),
            _ => continue,
        };
        let input: Shape = shapes[&layer.bottoms[0]];
        plans.insert(
            layer.name.clone(),
            plan_tiling(k, s, cfg.port_width_words, input.channels),
        );
    }
    Ok(plans)
}

/// Converts a stream length to the AGU's 32-bit `x_len` field, refusing
/// streams the hardware counter cannot express instead of silently
/// truncating the address program.
fn pattern_len(words: u64, phase: usize, stream: &'static str) -> Result<u32, CompileError> {
    u32::try_from(words).map_err(|_| CompileError::AguOverflow {
        phase,
        stream,
        words,
    })
}

/// Synthesises the per-phase AGU programs.
///
/// # Errors
///
/// Propagates shape-inference failures, and rejects networks whose
/// streams exceed the AGU's 32-bit length counters
/// ([`CompileError::AguOverflow`]).
pub fn synthesize_agus(
    net: &Network,
    plan: &FoldingPlan,
    map: &MemoryMap,
    tile_plans: &BTreeMap<String, TilePlan>,
    cfg: &CompilerConfig,
) -> Result<Vec<AguProgram>, CompileError> {
    let shapes = net.infer_shapes().map_err(CompileError::Network)?;
    let spill = plan_spill_slots(net, cfg).map_err(CompileError::Network)?;
    let seg_base = |place: BlobPlace| -> u64 {
        let name = match place {
            BlobPlace::Input => "input",
            BlobPlace::Output => "output",
            BlobPlace::Spill(_) => "spill",
        };
        map.segment(name).map(|s| s.offset).unwrap_or_default()
    };
    let mut programs = Vec::with_capacity(plan.phases.len());
    for phase in &plan.phases {
        let layer = net
            .layer(&phase.layer)
            .expect("plan references existing layers");
        let input: Shape = shapes[&layer.bottoms[0]];
        let output: Shape = shapes[&layer.tops[0]];
        let mut prog = AguProgram {
            phase: phase.id,
            ..AguProgram::default()
        };
        let in_words = input.elements() as u64;
        let out_words = output.elements() as u64;
        // Main AGU: fetch inputs (if not resident) and this fold's
        // weights; write back the output slice when it spills.
        if !phase.input_resident {
            // Each bottom streams from wherever its producing version
            // lives: the network input from `input`, anything else from
            // its spill slot. (Fetching everything from `input` used to
            // run mid-network fetches past the segment end into
            // unrelated weight segments; fetching everything from spill
            // offset 0 made every producer/consumer pair clobber the
            // same slot.)
            let fetches = spill.sources.get(&phase.layer).cloned().unwrap_or_default();
            for (blob, place) in fetches {
                let words = shapes
                    .get(&blob)
                    .map(|s| s.elements() as u64)
                    .unwrap_or(in_words);
                prog.main.push(AguPattern {
                    start: seg_base(place),
                    offset: spill.place_offset(place),
                    x_len: pattern_len(words, phase.id, "input fetch")?,
                    y_len: 1,
                    x_stride: 1,
                    y_stride: 0,
                });
                prog.main_write.push(false);
            }
        }
        if let Some(seg) = map.segment(&phase.layer) {
            // Round the per-fold slice up and clamp the final fold to the
            // segment end: a weight count that does not divide evenly by
            // the fold count must still be fetched completely (flooring
            // here used to drop the trailing words of the last fold).
            let fold_words = seg.len_words.div_ceil(phase.folds.max(1) as u64);
            let offset = fold_words * phase.fold as u64;
            let words = fold_words.min(seg.len_words.saturating_sub(offset));
            if words > 0 {
                prog.main.push(AguPattern {
                    start: seg.offset,
                    offset,
                    x_len: pattern_len(words, phase.id, "weight fetch")?,
                    y_len: 1,
                    x_stride: 1,
                    y_stride: 0,
                });
                prog.main_write.push(false);
            }
        }
        if phase.output_to_dram {
            // Write back to wherever this layer's top lives: its spill
            // slot mid-network, the `output` segment for the network's
            // final activation. (The last layer used to write `spill`
            // too, leaving the output segment permanently stale.)
            let place = spill
                .dest
                .get(&phase.layer)
                .map(|(_, p)| *p)
                .unwrap_or(BlobPlace::Spill(0));
            // Same round-up-and-clamp as the weight fetch above, so the
            // write-back covers every output word.
            let slice = out_words.div_ceil(phase.folds.max(1) as u64);
            let offset = slice * phase.fold as u64;
            let words = slice.min(out_words.saturating_sub(offset));
            if words > 0 {
                prog.main.push(AguPattern {
                    start: seg_base(place),
                    offset: spill.place_offset(place) + offset,
                    x_len: pattern_len(words, phase.id, "spill write-back")?,
                    y_len: 1,
                    x_stride: 1,
                    y_stride: 0,
                });
                prog.main_write.push(true);
            }
        }
        // Data AGU: window walks for spatial layers, linear sweep otherwise.
        match &layer.kind {
            LayerKind::Convolution(p) => {
                let row = tile_plans
                    .get(&phase.layer)
                    .map(|t| t.port_width)
                    .unwrap_or(cfg.port_width_words) as u64;
                prog.data.push(AguPattern {
                    start: 0,
                    offset: 0,
                    x_len: p.kernel_size as u32,
                    y_len: p.kernel_size as u32,
                    x_stride: 1,
                    y_stride: row,
                });
            }
            LayerKind::Pooling(p) => {
                prog.data.push(AguPattern {
                    start: 0,
                    offset: 0,
                    x_len: p.kernel_size as u32,
                    y_len: p.kernel_size as u32,
                    x_stride: 1,
                    y_stride: input.width as u64,
                });
            }
            _ => {
                prog.data.push(AguPattern::linear(
                    0,
                    pattern_len(in_words, phase.id, "data sweep")?,
                ));
            }
        }
        // Weight AGU: one linear stream over the fold's weights.
        if phase.kind == PhaseKind::Compute {
            let words = phase.work.buffer_read_words.max(1);
            prog.weight.push(AguPattern::linear(
                0,
                pattern_len(words, phase.id, "weight sweep")?,
            ));
        }
        programs.push(prog);
    }
    Ok(programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::plan_folding;
    use deepburning_model::{ConvParam, FullParam, Layer, PoolMethod, PoolParam};

    fn net() -> Network {
        Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 3, 16, 16),
                Layer::new(
                    "conv1",
                    LayerKind::Convolution(ConvParam::new(64, 3, 1)),
                    "data",
                    "conv1",
                ),
                Layer::new(
                    "pool1",
                    LayerKind::Pooling(PoolParam {
                        method: PoolMethod::Max,
                        kernel_size: 2,
                        stride: 2,
                    }),
                    "conv1",
                    "pool1",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(10)),
                    "pool1",
                    "fc",
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn memory_map_is_consistent() {
        let map = build_memory_map(&net(), &CompilerConfig::default()).expect("map");
        assert!(map.is_consistent());
        assert!(map.segment("input").is_some());
        assert!(map.segment("conv1").is_some());
        assert!(map.segment("fc").is_some());
        assert!(map.segment("spill").is_some());
        assert!(map.segment("output").is_some());
        assert!(map.segment("pool1").is_none(), "pooling has no weights");
    }

    #[test]
    fn memory_map_aligned_to_port() {
        let cfg = CompilerConfig {
            port_width_words: 16,
            ..CompilerConfig::default()
        };
        let map = build_memory_map(&net(), &cfg).expect("map");
        for seg in &map.segments {
            assert_eq!(seg.offset % 16, 0, "{} misaligned", seg.name);
            assert_eq!(seg.len_words % 16, 0, "{} length unaligned", seg.name);
        }
    }

    #[test]
    fn weight_segment_sizes_match_stats() {
        let map = build_memory_map(&net(), &CompilerConfig::default()).expect("map");
        let conv_w = 64 * 3 * 9 + 64; // weights + bias
        let seg = map.segment("conv1").expect("segment");
        assert!(seg.len_words >= conv_w && seg.len_words < conv_w + 16);
    }

    #[test]
    fn agu_programs_cover_every_phase() {
        let n = net();
        let cfg = CompilerConfig::default();
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let programs = synthesize_agus(&n, &plan, &map, &tiles, &cfg).expect("agus");
        assert_eq!(programs.len(), plan.phases.len());
        for (prog, phase) in programs.iter().zip(&plan.phases) {
            assert_eq!(prog.phase, phase.id);
            assert!(
                !prog.data.is_empty(),
                "phase {} has no data pattern",
                phase.id
            );
        }
    }

    #[test]
    fn conv_data_pattern_is_window_walk() {
        let n = net();
        let cfg = CompilerConfig::default();
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let programs = synthesize_agus(&n, &plan, &map, &tiles, &cfg).expect("agus");
        let conv_prog = &programs[0];
        let w = &conv_prog.data[0];
        assert_eq!(w.x_len, 3);
        assert_eq!(w.y_len, 3);
        assert_eq!(w.footprint(), 9);
    }

    #[test]
    fn weight_folds_advance_offset() {
        let n = net();
        let cfg = CompilerConfig {
            lanes: 32, // conv1 has 64 outputs -> 2 folds
            ..CompilerConfig::default()
        };
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let programs = synthesize_agus(&n, &plan, &map, &tiles, &cfg).expect("agus");
        let fold0 = programs[0]
            .main
            .iter()
            .find(|p| p.start == map.segment("conv1").expect("seg").offset)
            .expect("weight fetch");
        let fold1 = programs[1]
            .main
            .iter()
            .find(|p| p.start == map.segment("conv1").expect("seg").offset)
            .expect("weight fetch");
        assert_eq!(fold0.offset, 0);
        assert!(fold1.offset > 0);
    }

    #[test]
    fn non_divisible_folds_cover_whole_weight_segment() {
        let n = net();
        // conv1 has 64 maps x 3x3 kernel x 3 channels = 576 parallel
        // units; 120 lanes -> 5 folds, and the conv1 weight segment
        // (1792 words before alignment) does not divide by 5.
        let cfg = CompilerConfig {
            lanes: 120,
            ..CompilerConfig::default()
        };
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let programs = synthesize_agus(&n, &plan, &map, &tiles, &cfg).expect("agus");
        let seg = map.segment("conv1").expect("seg");
        let mut slices: Vec<(u64, u64)> = plan
            .phases
            .iter()
            .filter(|p| p.layer == "conv1")
            .flat_map(|p| &programs[p.id].main)
            .filter(|pat| pat.start == seg.offset)
            .map(|pat| (pat.offset, u64::from(pat.x_len)))
            .collect();
        assert!(slices.len() >= 2, "expected several weight folds");
        assert_ne!(
            seg.len_words % slices.len() as u64,
            0,
            "test needs a non-divisible fold count to bite"
        );
        slices.sort_unstable();
        let mut cursor = 0u64;
        for (offset, len) in &slices {
            assert_eq!(*offset, cursor, "fold slices must be contiguous");
            assert!(*len > 0);
            cursor += len;
        }
        assert_eq!(
            cursor, seg.len_words,
            "fold slices must cover the whole weight segment"
        );
    }

    #[test]
    fn oversized_stream_is_a_compile_error() {
        // 70000x70000 input: ~4.9G words, beyond the AGU's 32-bit
        // length counter. This used to silently cap at u32::MAX.
        let n = Network::from_layers(
            "huge",
            vec![
                Layer::input("data", "data", 1, 70_000, 70_000),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(4)),
                    "data",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let cfg = CompilerConfig::default();
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let err = synthesize_agus(&n, &plan, &map, &tiles, &cfg)
            .expect_err("4.9G-word stream must be rejected");
        match err {
            CompileError::AguOverflow { words, .. } => {
                assert!(words > u64::from(u32::MAX));
            }
            other => panic!("expected AguOverflow, got {other}"),
        }
    }

    #[test]
    fn tile_plans_only_for_spatial_layers() {
        let tiles = plan_layer_tiling(&net(), &CompilerConfig::default()).expect("tiles");
        assert!(tiles.contains_key("conv1"));
        assert!(tiles.contains_key("pool1"));
        assert!(!tiles.contains_key("fc"));
    }

    #[test]
    fn spill_plan_separates_live_blobs_and_targets_output() {
        let n = net();
        let spill = plan_spill_slots(&n, &CompilerConfig::default()).expect("plan");
        assert!(spill.slots >= 2);
        // conv1's activation is still live while pool1 produces its own,
        // so the two must not share a slot (they used to: everything
        // landed at spill offset 0).
        let conv_dst = spill.dest.get("conv1").expect("conv1 dest").1;
        let pool_dst = spill.dest.get("pool1").expect("pool1 dest").1;
        assert_ne!(conv_dst, pool_dst);
        // pool1 fetches conv1's activation from where conv1 wrote it.
        let pool_src = &spill.sources.get("pool1").expect("pool1 src")[0];
        assert_eq!(pool_src.0, "conv1");
        assert_eq!(pool_src.1, conv_dst);
        // The network's final activation lands in the output segment.
        assert_eq!(spill.dest.get("fc").expect("fc dest").1, BlobPlace::Output);
        // Input fetches come from the input segment.
        let conv_src = &spill.sources.get("conv1").expect("conv1 src")[0];
        assert_eq!(conv_src.1, BlobPlace::Input);
    }

    #[test]
    fn in_place_layers_get_fresh_versions() {
        use deepburning_model::Activation;
        // conv -> relu (in place on "conv") -> fc: relu reads version 0
        // of "conv" and writes version 1, which must live in a different
        // slot — otherwise the element-wise pass overwrites words of its
        // own input mid-stream.
        let n = Network::from_layers(
            "inplace",
            vec![
                Layer::input("data", "data", 1, 8, 8),
                Layer::new(
                    "conv",
                    LayerKind::Convolution(ConvParam::new(4, 3, 1)),
                    "data",
                    "conv",
                ),
                Layer::new(
                    "relu",
                    LayerKind::Activation(Activation::Relu),
                    "conv",
                    "conv",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(4)),
                    "conv",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let spill = plan_spill_slots(&n, &CompilerConfig::default()).expect("plan");
        let conv_v0 = spill.dest.get("conv").expect("conv dest").1;
        let relu_src = spill.sources.get("relu").expect("relu src")[0].1;
        let relu_dst = spill.dest.get("relu").expect("relu dest").1;
        assert_eq!(relu_src, conv_v0, "relu reads the version conv wrote");
        assert_ne!(relu_dst, relu_src, "in-place write needs a fresh slot");
        // fc reads the *post-relu* version, not the raw conv output.
        assert_eq!(spill.sources.get("fc").expect("fc src")[0].1, relu_dst);
        assert_eq!(spill.dest.get("fc").expect("fc dest").1, BlobPlace::Output);
    }

    #[test]
    fn final_write_back_targets_output_segment() {
        let n = net();
        let cfg = CompilerConfig::default();
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let programs = synthesize_agus(&n, &plan, &map, &tiles, &cfg).expect("agus");
        let out_seg = map.segment("output").expect("output segment");
        let last_fc_phase = plan
            .phases
            .iter()
            .rfind(|p| p.layer == "fc")
            .expect("fc phases");
        let prog = &programs[last_fc_phase.id];
        let (idx, wb) = prog
            .main
            .iter()
            .enumerate()
            .find(|(i, _)| prog.main_write[*i])
            .expect("fc write-back");
        assert_eq!(
            wb.start, out_seg.offset,
            "final activation must land in `output`, not `spill`"
        );
        assert!(wb.offset + u64::from(wb.x_len) <= out_seg.len_words);
        let _ = idx;
    }

    #[test]
    fn main_write_flags_parallel_main_patterns() {
        let n = net();
        let cfg = CompilerConfig::default();
        let plan = plan_folding(&n, &cfg).expect("plan");
        let map = build_memory_map(&n, &cfg).expect("map");
        let tiles = plan_layer_tiling(&n, &cfg).expect("tiles");
        let programs = synthesize_agus(&n, &plan, &map, &tiles, &cfg).expect("agus");
        let spill_seg = map.segment("spill").expect("spill");
        let out_seg = map.segment("output").expect("output");
        for prog in &programs {
            assert_eq!(prog.main.len(), prog.main_write.len());
            for (pat, &write) in prog.main.iter().zip(&prog.main_write) {
                if write {
                    assert!(
                        pat.start == spill_seg.offset || pat.start == out_seg.offset,
                        "writes only land in spill/output"
                    );
                }
            }
        }
    }
}
