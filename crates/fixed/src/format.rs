//! Q-format descriptors for the fixed-point datapath.
//!
//! The DeepBurning generator decides the bit-width of every datapath lane at
//! generation time ("the input bit-width … for the DeepBurning hardware
//! generator to decide"), so formats are runtime values rather than type
//! parameters.

use std::fmt;

/// A signed fixed-point format: `total_bits` two's-complement bits of which
/// `frac_bits` sit right of the binary point.
///
/// # Examples
///
/// ```
/// use deepburning_fixed::QFormat;
///
/// let q = QFormat::new(16, 8)?;
/// assert_eq!(q.integer_bits(), 7); // one bit is the sign
/// assert_eq!(q.max_value(), 127.99609375);
/// # Ok::<(), deepburning_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QFormat {
    total_bits: u32,
    frac_bits: u32,
}

/// Error returned when constructing an invalid [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// `total_bits` was zero or exceeded 32.
    InvalidWidth(u32),
    /// `frac_bits` did not leave room for the sign bit.
    InvalidFraction { total_bits: u32, frac_bits: u32 },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FormatError::InvalidWidth(w) => {
                write!(f, "total width {w} is outside the supported 1..=32 bits")
            }
            FormatError::InvalidFraction {
                total_bits,
                frac_bits,
            } => write!(
                f,
                "fraction width {frac_bits} does not fit in {total_bits} bits with a sign bit"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

impl QFormat {
    /// The default datapath format used by the paper's accelerators:
    /// 16-bit words with 8 fraction bits (Q7.8).
    pub const Q8_8: QFormat = QFormat {
        total_bits: 16,
        frac_bits: 8,
    };

    /// A high-precision format for accumulators and LUT values (Q15.16).
    pub const Q16_16: QFormat = QFormat {
        total_bits: 32,
        frac_bits: 16,
    };

    /// A narrow format exercised by the bit-width ablation (Q3.4).
    pub const Q4_4: QFormat = QFormat {
        total_bits: 8,
        frac_bits: 4,
    };

    /// Creates a format with `total_bits` total width and `frac_bits`
    /// fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if `total_bits` is not in `1..=32` or if
    /// `frac_bits >= total_bits` (the sign bit must remain).
    pub fn new(total_bits: u32, frac_bits: u32) -> Result<Self, FormatError> {
        if total_bits == 0 || total_bits > 32 {
            return Err(FormatError::InvalidWidth(total_bits));
        }
        if frac_bits >= total_bits {
            return Err(FormatError::InvalidFraction {
                total_bits,
                frac_bits,
            });
        }
        Ok(QFormat {
            total_bits,
            frac_bits,
        })
    }

    /// Total two's-complement width in bits.
    pub fn total_bits(self) -> u32 {
        self.total_bits
    }

    /// Number of bits right of the binary point.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Number of magnitude bits left of the binary point (excludes sign).
    pub fn integer_bits(self) -> u32 {
        self.total_bits - self.frac_bits - 1
    }

    /// Smallest representable increment (one LSB) as `f64`.
    pub fn resolution(self) -> f64 {
        (-(self.frac_bits as f64)).exp2()
    }

    /// Largest raw integer representable.
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest (most negative) raw integer representable.
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable value as `f64`.
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * self.resolution()
    }

    /// Smallest representable value as `f64`.
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 * self.resolution()
    }

    /// Clamps a raw integer into this format's range (saturation).
    pub fn saturate(self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }

    /// Whether `raw` is representable without saturation.
    pub fn contains_raw(self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }
}

impl Default for QFormat {
    fn default() -> Self {
        QFormat::Q8_8
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.integer_bits(), self.frac_bits)
    }
}

/// Error returned when parsing a [`QFormat`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` is not a Q<int>.<frac> format", self.input)
    }
}

impl std::error::Error for ParseFormatError {}

impl std::str::FromStr for QFormat {
    type Err = ParseFormatError;

    /// Parses the `Q<integer>.<fraction>` notation used by [`Display`]
    /// (e.g. `Q7.8` = 16 total bits with 8 fraction bits).
    ///
    /// [`Display`]: fmt::Display
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let reject = || ParseFormatError {
            input: s.to_string(),
        };
        let body = s.strip_prefix(['Q', 'q']).ok_or_else(reject)?;
        let (int_s, frac_s) = body.split_once('.').ok_or_else(reject)?;
        let int: u32 = int_s.parse().map_err(|_| reject())?;
        let frac: u32 = frac_s.parse().map_err(|_| reject())?;
        QFormat::new(int + frac + 1, frac).map_err(|_| reject())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_8_bounds() {
        let q = QFormat::Q8_8;
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.min_raw(), -32768);
        assert!((q.resolution() - 1.0 / 256.0).abs() < 1e-12);
        assert!((q.max_value() - 127.99609375).abs() < 1e-9);
        assert!((q.min_value() + 128.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        assert_eq!(QFormat::Q8_8.to_string(), "Q7.8");
        assert_eq!(QFormat::new(8, 4).unwrap().to_string(), "Q3.4");
    }

    #[test]
    fn rejects_zero_width() {
        assert_eq!(QFormat::new(0, 0), Err(FormatError::InvalidWidth(0)));
    }

    #[test]
    fn rejects_too_wide() {
        assert_eq!(QFormat::new(33, 0), Err(FormatError::InvalidWidth(33)));
    }

    #[test]
    fn rejects_fraction_eating_sign() {
        assert!(matches!(
            QFormat::new(8, 8),
            Err(FormatError::InvalidFraction { .. })
        ));
        assert!(QFormat::new(8, 7).is_ok());
    }

    #[test]
    fn saturate_clamps_both_ends() {
        let q = QFormat::new(8, 0).unwrap();
        assert_eq!(q.saturate(1000), 127);
        assert_eq!(q.saturate(-1000), -128);
        assert_eq!(q.saturate(5), 5);
    }

    #[test]
    fn contains_raw_matches_bounds() {
        let q = QFormat::new(4, 1).unwrap();
        assert!(q.contains_raw(7));
        assert!(q.contains_raw(-8));
        assert!(!q.contains_raw(8));
        assert!(!q.contains_raw(-9));
    }

    #[test]
    fn parses_display_notation() {
        let q: QFormat = "Q7.8".parse().expect("parses");
        assert_eq!(q, QFormat::Q8_8);
        let q: QFormat = "q3.4".parse().expect("parses");
        assert_eq!(q, QFormat::new(8, 4).unwrap());
        assert!("Q7".parse::<QFormat>().is_err());
        assert!("7.8".parse::<QFormat>().is_err());
        assert!("Qx.y".parse::<QFormat>().is_err());
        assert!("Q40.40".parse::<QFormat>().is_err());
    }

    #[test]
    fn display_from_str_roundtrip() {
        for q in [QFormat::Q8_8, QFormat::Q16_16, QFormat::Q4_4] {
            let back: QFormat = q.to_string().parse().expect("roundtrips");
            assert_eq!(back, q);
        }
    }

    #[test]
    fn one_bit_format_is_sign_only() {
        let q = QFormat::new(1, 0).unwrap();
        assert_eq!(q.max_raw(), 0);
        assert_eq!(q.min_raw(), -1);
    }
}
