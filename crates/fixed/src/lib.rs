//! Fixed-point arithmetic and approximate-LUT math for DeepBurning.
//!
//! The generated accelerators compute in narrow two's-complement fixed
//! point; activation functions are served from compiler-filled approximate
//! look-up tables. This crate is the single source of truth for that
//! arithmetic: the functional simulator, the LUT-content generator and the
//! accuracy experiments all build on it.
//!
//! # Examples
//!
//! ```
//! use deepburning_fixed::{Accumulator, ApproxLut, Fx, QFormat, Rounding, Sampling};
//!
//! let fmt = QFormat::Q8_8;
//! // A neuron: weighted sum + sigmoid from an Approx LUT.
//! let lut = ApproxLut::sample(|x| 1.0 / (1.0 + (-x).exp()), -8.0, 8.0, 64, fmt, Sampling::Uniform)?;
//! let mut acc = Accumulator::new(fmt);
//! acc.mac(Fx::from_f64(0.5, fmt), Fx::from_f64(2.0, fmt));
//! acc.add(Fx::from_f64(-0.25, fmt));
//! let out = lut.eval(acc.resolve(Rounding::Nearest));
//! assert!((out.to_f64() - 0.679).abs() < 0.01);
//! # Ok::<(), deepburning_fixed::BuildLutError>(())
//! ```

mod format;
mod lut;
mod value;

pub use format::{FormatError, ParseFormatError, QFormat};
pub use lut::{ApproxLut, BuildLutError, Sampling};
pub use value::{Accumulator, Fx, Rounding};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_format() -> impl Strategy<Value = QFormat> {
        (2u32..=32).prop_flat_map(|total| {
            (0..total).prop_map(move |frac| QFormat::new(total, frac).expect("valid format"))
        })
    }

    proptest! {
        #[test]
        fn from_f64_never_escapes_range(v in -1e6f64..1e6, fmt in arb_format()) {
            let x = Fx::from_f64(v, fmt);
            prop_assert!(fmt.contains_raw(x.raw()));
        }

        #[test]
        fn add_is_commutative(a in -200.0f64..200.0, b in -200.0f64..200.0, fmt in arb_format()) {
            let (x, y) = (Fx::from_f64(a, fmt), Fx::from_f64(b, fmt));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn mul_is_commutative(a in -100.0f64..100.0, b in -100.0f64..100.0, fmt in arb_format()) {
            let (x, y) = (Fx::from_f64(a, fmt), Fx::from_f64(b, fmt));
            prop_assert_eq!(x * y, y * x);
        }

        #[test]
        fn quantization_error_bounded_by_half_lsb(v in -100.0f64..100.0) {
            let fmt = QFormat::Q16_16;
            let x = Fx::from_f64(v, fmt);
            prop_assert!((x.to_f64() - v).abs() <= fmt.resolution() / 2.0 + 1e-12);
        }

        #[test]
        fn requantize_roundtrip_through_wider(raw in -32768i64..=32767) {
            let narrow = QFormat::Q8_8;
            let v = Fx::from_raw(raw, narrow);
            let there = v.requantize(QFormat::Q16_16, Rounding::Truncate);
            let back = there.requantize(narrow, Rounding::Truncate);
            prop_assert_eq!(back, v);
        }

        #[test]
        fn accumulator_matches_f64_for_small_inputs(
            pairs in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..64)
        ) {
            let fmt = QFormat::Q16_16;
            let mut acc = Accumulator::new(fmt);
            let mut reference = 0.0f64;
            for (a, b) in &pairs {
                let (xa, xb) = (Fx::from_f64(*a, fmt), Fx::from_f64(*b, fmt));
                acc.mac(xa, xb);
                reference += xa.to_f64() * xb.to_f64();
            }
            let got = acc.resolve(Rounding::Nearest).to_f64();
            // Full-precision accumulation: error only from final quantise.
            prop_assert!((got - reference).abs() <= fmt.resolution() * 1.001,
                "got {got}, reference {reference}");
        }

        #[test]
        fn lut_eval_within_segment_bounds(x in -8.0f64..8.0, entries in 4usize..64) {
            let lut = ApproxLut::sample(
                |v| v.tanh(), -8.0, 8.0, entries, QFormat::Q16_16, Sampling::Uniform,
            ).expect("valid lut");
            let y = lut.eval_f64(x);
            // tanh is bounded; interpolation of a bounded monotone function
            // stays within the function's range.
            prop_assert!((-1.001..=1.001).contains(&y));
        }
    }
}
