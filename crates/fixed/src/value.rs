//! Saturating fixed-point values as computed by the generated datapath.

use crate::format::QFormat;
use std::cmp::Ordering;
use std::fmt;

/// Rounding mode applied when a value loses fraction bits.
///
/// The synthesised datapath truncates by default (cheapest in logic); the
/// generator can opt into round-to-nearest when the LUT/bit-width ablation
/// asks for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Drop the discarded bits (round toward negative infinity).
    #[default]
    Truncate,
    /// Round half away from zero, as an adder-based rounder would.
    Nearest,
}

/// A fixed-point value: a raw two's-complement integer interpreted through a
/// [`QFormat`].
///
/// All arithmetic saturates on overflow, mirroring the saturating
/// accumulators in the synergy-neuron datapath.
///
/// # Examples
///
/// ```
/// use deepburning_fixed::{Fx, QFormat};
///
/// let fmt = QFormat::Q8_8;
/// let a = Fx::from_f64(1.5, fmt);
/// let b = Fx::from_f64(2.25, fmt);
/// assert_eq!((a + b).to_f64(), 3.75);
/// assert_eq!((a * b).to_f64(), 3.375);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fx {
    raw: i64,
    fmt: QFormat,
}

impl Fx {
    /// Zero in the given format.
    pub fn zero(fmt: QFormat) -> Self {
        Fx { raw: 0, fmt }
    }

    /// One (1.0) in the given format, saturated if 1.0 is unrepresentable.
    pub fn one(fmt: QFormat) -> Self {
        Fx::from_raw(1i64 << fmt.frac_bits(), fmt)
    }

    /// Builds a value from a raw integer, saturating into the format range.
    pub fn from_raw(raw: i64, fmt: QFormat) -> Self {
        Fx {
            raw: fmt.saturate(raw),
            fmt,
        }
    }

    /// Quantises an `f64`, rounding to nearest and saturating.
    ///
    /// Non-finite inputs saturate toward the matching end of the range
    /// (`NaN` maps to zero), which is what a hardware converter fed garbage
    /// would be configured to do.
    pub fn from_f64(value: f64, fmt: QFormat) -> Self {
        if value.is_nan() {
            return Fx::zero(fmt);
        }
        // `1 << frac` is exact in f64 for any frac_bits < 53 and avoids a
        // libm exp2 call on what is the weight-quantisation hot path.
        let scaled = value * (1u64 << fmt.frac_bits()) as f64;
        let raw = if scaled >= fmt.max_raw() as f64 {
            fmt.max_raw()
        } else if scaled <= fmt.min_raw() as f64 {
            fmt.min_raw()
        } else {
            scaled.round() as i64
        };
        Fx::from_raw(raw, fmt)
    }

    /// The raw two's-complement integer.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format this value is interpreted through.
    pub fn format(self) -> QFormat {
        self.fmt
    }

    /// The value as `f64`.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.fmt.resolution()
    }

    /// Re-quantises into another format with the given rounding.
    ///
    /// This models the width adapters the generator inserts between blocks
    /// of different bit-widths.
    pub fn requantize(self, fmt: QFormat, rounding: Rounding) -> Fx {
        let from_f = self.fmt.frac_bits();
        let to_f = fmt.frac_bits();
        let raw = match from_f.cmp(&to_f) {
            Ordering::Equal => self.raw,
            Ordering::Less => self.raw << (to_f - from_f),
            Ordering::Greater => {
                let shift = from_f - to_f;
                match rounding {
                    Rounding::Truncate => self.raw >> shift,
                    Rounding::Nearest => {
                        let half = 1i64 << (shift - 1);
                        if self.raw >= 0 {
                            (self.raw + half) >> shift
                        } else {
                            -((-self.raw + half) >> shift)
                        }
                    }
                }
            }
        };
        Fx::from_raw(raw, fmt)
    }

    /// Saturating negation.
    pub fn saturating_neg(self) -> Fx {
        Fx::from_raw(-self.raw, self.fmt)
    }

    /// Absolute value, saturating at the positive end.
    pub fn saturating_abs(self) -> Fx {
        Fx::from_raw(self.raw.abs(), self.fmt)
    }

    /// Arithmetic right shift — the "shifting latch" in the connection box
    /// used for approximate division by powers of two.
    pub fn shift_right(self, bits: u32) -> Fx {
        Fx::from_raw(self.raw >> bits.min(63), self.fmt)
    }

    /// Maximum of two values (pooling comparator).
    ///
    /// # Panics
    ///
    /// Panics if the formats differ; the generator only ever compares values
    /// inside one lane.
    pub fn max(self, other: Fx) -> Fx {
        assert_eq!(self.fmt, other.fmt, "comparing values of different formats");
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// Minimum of two values.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn min(self, other: Fx) -> Fx {
        assert_eq!(self.fmt, other.fmt, "comparing values of different formats");
        if self.raw <= other.raw {
            self
        } else {
            other
        }
    }
}

impl PartialEq for Fx {
    fn eq(&self, other: &Self) -> bool {
        self.fmt == other.fmt && self.raw == other.raw
    }
}

impl Eq for Fx {}

impl PartialOrd for Fx {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.fmt == other.fmt {
            Some(self.raw.cmp(&other.raw))
        } else {
            None
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.to_f64(), self.fmt)
    }
}

impl std::ops::Add for Fx {
    type Output = Fx;

    /// Saturating addition.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    fn add(self, rhs: Fx) -> Fx {
        assert_eq!(self.fmt, rhs.fmt, "adding values of different formats");
        Fx::from_raw(self.raw + rhs.raw, self.fmt)
    }
}

impl std::ops::Sub for Fx {
    type Output = Fx;

    /// Saturating subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    fn sub(self, rhs: Fx) -> Fx {
        assert_eq!(self.fmt, rhs.fmt, "subtracting values of different formats");
        Fx::from_raw(self.raw - rhs.raw, self.fmt)
    }
}

impl std::ops::Mul for Fx {
    type Output = Fx;

    /// Saturating multiplication with truncation of the extra fraction bits,
    /// matching the DSP-slice multiply in a synergy neuron.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    fn mul(self, rhs: Fx) -> Fx {
        assert_eq!(self.fmt, rhs.fmt, "multiplying values of different formats");
        let wide = self.raw as i128 * rhs.raw as i128;
        let shifted = wide >> self.fmt.frac_bits();
        let raw = shifted.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        Fx::from_raw(raw, self.fmt)
    }
}

impl std::ops::Neg for Fx {
    type Output = Fx;

    fn neg(self) -> Fx {
        self.saturating_neg()
    }
}

/// Wide accumulator used by the neuron MAC chain: products are summed at
/// full precision and only quantised back when written out.
///
/// # Examples
///
/// ```
/// use deepburning_fixed::{Accumulator, Fx, QFormat, Rounding};
///
/// let fmt = QFormat::Q8_8;
/// let mut acc = Accumulator::new(fmt);
/// for _ in 0..100 {
///     acc.mac(Fx::from_f64(1.0, fmt), Fx::from_f64(1.0, fmt));
/// }
/// assert_eq!(acc.resolve(Rounding::Truncate).to_f64(), 100.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Accumulator {
    /// Running sum, carrying `2 * frac_bits` fraction bits.
    wide: i128,
    fmt: QFormat,
}

impl Accumulator {
    /// A zeroed accumulator producing values in `fmt`.
    pub fn new(fmt: QFormat) -> Self {
        Accumulator { wide: 0, fmt }
    }

    /// Adds `a * b` at full precision.
    ///
    /// # Panics
    ///
    /// Panics if operand formats disagree with the accumulator format.
    pub fn mac(&mut self, a: Fx, b: Fx) {
        assert_eq!(a.format(), self.fmt, "mac operand format mismatch");
        assert_eq!(b.format(), self.fmt, "mac operand format mismatch");
        self.wide += a.raw() as i128 * b.raw() as i128;
    }

    /// Adds a plain value (bias injection).
    ///
    /// # Panics
    ///
    /// Panics if the operand format disagrees with the accumulator format.
    pub fn add(&mut self, v: Fx) {
        assert_eq!(v.format(), self.fmt, "accumulator operand format mismatch");
        self.wide += (v.raw() as i128) << self.fmt.frac_bits();
    }

    /// Quantises the running sum back to the lane format, saturating.
    pub fn resolve(self, rounding: Rounding) -> Fx {
        let shift = self.fmt.frac_bits();
        let raw = match rounding {
            Rounding::Truncate => self.wide >> shift,
            Rounding::Nearest => {
                if shift == 0 {
                    self.wide
                } else {
                    let half = 1i128 << (shift - 1);
                    if self.wide >= 0 {
                        (self.wide + half) >> shift
                    } else {
                        -((-self.wide + half) >> shift)
                    }
                }
            }
        };
        Fx::from_raw(
            raw.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
            self.fmt,
        )
    }

    /// The format values resolve to.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Resets the running sum to zero.
    pub fn clear(&mut self) {
        self.wide = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: QFormat = QFormat::Q8_8;

    #[test]
    fn roundtrip_f64() {
        for v in [-128.0, -1.5, -0.00390625, 0.0, 0.5, 1.0, 127.99609375] {
            assert_eq!(Fx::from_f64(v, F).to_f64(), v, "value {v}");
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Fx::from_f64(1e9, F).to_f64(), F.max_value());
        assert_eq!(Fx::from_f64(-1e9, F).to_f64(), F.min_value());
        assert_eq!(Fx::from_f64(f64::INFINITY, F).raw(), F.max_raw());
        assert_eq!(Fx::from_f64(f64::NEG_INFINITY, F).raw(), F.min_raw());
        assert_eq!(Fx::from_f64(f64::NAN, F).raw(), 0);
    }

    #[test]
    fn add_saturates() {
        let a = Fx::from_f64(100.0, F);
        let b = Fx::from_f64(100.0, F);
        assert_eq!((a + b).raw(), F.max_raw());
        assert_eq!((-a + -b).raw(), F.min_raw());
    }

    #[test]
    fn mul_matches_float_for_exact_values() {
        let a = Fx::from_f64(3.5, F);
        let b = Fx::from_f64(-2.0, F);
        assert_eq!((a * b).to_f64(), -7.0);
    }

    #[test]
    fn mul_truncates_toward_neg_infinity() {
        // 0.00390625 * 0.5 = 0.001953125 -> one LSB below representable,
        // truncation drops to 0.
        let a = Fx::from_raw(1, F);
        let b = Fx::from_f64(0.5, F);
        assert_eq!((a * b).raw(), 0);
        // negative case: -1 LSB * 0.5 -> raw -1 >> 1 = -1 (arithmetic shift)
        let c = Fx::from_raw(-1, F);
        assert_eq!((c * b).raw(), -1);
    }

    #[test]
    fn requantize_widen_then_narrow_is_identity() {
        let v = Fx::from_f64(-3.125, F);
        let wide = v.requantize(QFormat::Q16_16, Rounding::Truncate);
        assert_eq!(wide.to_f64(), -3.125);
        let back = wide.requantize(F, Rounding::Truncate);
        assert_eq!(back, v);
    }

    #[test]
    fn requantize_nearest_rounds_half_away() {
        let fine = QFormat::new(16, 8).unwrap();
        let coarse = QFormat::new(16, 4).unwrap();
        // 8 LSBs at frac=8 is 0.03125; at frac=4 resolution 0.0625 -> rounds to 0.0625
        let v = Fx::from_raw(8, fine);
        assert_eq!(v.requantize(coarse, Rounding::Nearest).raw(), 1);
        assert_eq!(v.requantize(coarse, Rounding::Truncate).raw(), 0);
        let n = Fx::from_raw(-8, fine);
        assert_eq!(n.requantize(coarse, Rounding::Nearest).raw(), -1);
    }

    #[test]
    fn neg_saturates_min() {
        let v = Fx::from_raw(F.min_raw(), F);
        assert_eq!((-v).raw(), F.max_raw());
    }

    #[test]
    fn shift_right_divides() {
        let v = Fx::from_f64(10.0, F);
        assert_eq!(v.shift_right(1).to_f64(), 5.0);
        assert_eq!(v.shift_right(2).to_f64(), 2.5);
    }

    #[test]
    fn accumulator_long_chain_exact() {
        let mut acc = Accumulator::new(F);
        for i in 0..1000 {
            let a = Fx::from_f64(if i % 2 == 0 { 0.25 } else { -0.25 }, F);
            acc.mac(a, Fx::one(F));
        }
        assert_eq!(acc.resolve(Rounding::Truncate).to_f64(), 0.0);
    }

    #[test]
    fn accumulator_resolve_saturates() {
        let mut acc = Accumulator::new(F);
        for _ in 0..10 {
            acc.mac(Fx::from_f64(100.0, F), Fx::from_f64(100.0, F));
        }
        assert_eq!(acc.resolve(Rounding::Truncate).raw(), F.max_raw());
    }

    #[test]
    fn accumulator_bias_add() {
        let mut acc = Accumulator::new(F);
        acc.add(Fx::from_f64(1.5, F));
        acc.mac(Fx::from_f64(2.0, F), Fx::from_f64(3.0, F));
        assert_eq!(acc.resolve(Rounding::Nearest).to_f64(), 7.5);
    }

    #[test]
    fn max_min_choose_correctly() {
        let a = Fx::from_f64(1.0, F);
        let b = Fx::from_f64(-2.0, F);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cross_format_compare_is_none() {
        let a = Fx::from_f64(1.0, F);
        let b = Fx::from_f64(1.0, QFormat::Q16_16);
        assert_eq!(a.partial_cmp(&b), None);
        assert_ne!(a, b);
    }
}
