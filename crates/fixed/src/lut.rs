//! Approximate look-up tables ("Approx LUT", paper §3.3).
//!
//! Complex functions that cannot be mapped efficiently into logic —
//! activation functions above all — are approximated by a table of sampled
//! points. Keys that hit the table read the stored value directly; misses
//! interpolate between the adjacent keys. The table *content* is produced by
//! the compiler ([`ApproxLut::sample`]) while the table *hardware* is emitted
//! by the generator.

use crate::format::QFormat;
use crate::value::Fx;
use std::fmt;

/// Strategy used to place the sampled keys over the input range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sampling {
    /// Keys spaced evenly over the range — cheapest index hardware
    /// (index = shift of the input key).
    #[default]
    Uniform,
    /// Keys placed where the function curves most, equalising the
    /// interpolation error across segments. Needs a small comparator tree
    /// in hardware, bought back by fewer entries.
    ErrorEqualizing,
}

/// Error returned when building an [`ApproxLut`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildLutError {
    /// Fewer than two entries requested — interpolation needs two keys.
    TooFewEntries(usize),
    /// The sampled range was empty or inverted.
    EmptyRange { lo: f64, hi: f64 },
}

impl fmt::Display for BuildLutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildLutError::TooFewEntries(n) => {
                write!(f, "approx LUT needs at least 2 entries, got {n}")
            }
            BuildLutError::EmptyRange { lo, hi } => {
                write!(f, "approx LUT range [{lo}, {hi}] is empty")
            }
        }
    }
}

impl std::error::Error for BuildLutError {}

/// A sampled function table with linear interpolation between entries.
///
/// # Examples
///
/// ```
/// use deepburning_fixed::{ApproxLut, QFormat, Sampling};
///
/// let lut = ApproxLut::sample(|x| x.tanh(), -4.0, 4.0, 64, QFormat::Q8_8, Sampling::Uniform)?;
/// let y = lut.eval_f64(0.5);
/// assert!((y - 0.5f64.tanh()).abs() < 0.01);
/// # Ok::<(), deepburning_fixed::BuildLutError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxLut {
    keys: Vec<Fx>,
    values: Vec<Fx>,
    fmt: QFormat,
    sampling: Sampling,
}

impl ApproxLut {
    /// Samples `f` over `[lo, hi]` into `entries` key/value pairs.
    ///
    /// With [`Sampling::ErrorEqualizing`] the keys are concentrated where
    /// `|f''|` is large, computed by equalising the arc-length-weighted
    /// curvature integral across segments.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLutError`] if `entries < 2` or the range is empty.
    pub fn sample(
        f: impl Fn(f64) -> f64,
        lo: f64,
        hi: f64,
        entries: usize,
        fmt: QFormat,
        sampling: Sampling,
    ) -> Result<Self, BuildLutError> {
        if entries < 2 {
            return Err(BuildLutError::TooFewEntries(entries));
        }
        if lo >= hi {
            return Err(BuildLutError::EmptyRange { lo, hi });
        }
        let key_points: Vec<f64> = match sampling {
            Sampling::Uniform => (0..entries)
                .map(|i| lo + (hi - lo) * i as f64 / (entries - 1) as f64)
                .collect(),
            Sampling::ErrorEqualizing => error_equalizing_keys(&f, lo, hi, entries),
        };
        let mut keys: Vec<Fx> = Vec::with_capacity(entries);
        let mut values = Vec::with_capacity(entries);
        for x in key_points {
            let k = Fx::from_f64(x, fmt);
            // Drop keys that quantised onto (or behind) an already-stored
            // point: the table must stay strictly ascending for the
            // binary search / comparator tree to be valid.
            if keys.last().is_some_and(|last| k.raw() <= last.raw()) {
                continue;
            }
            keys.push(k);
            values.push(Fx::from_f64(f(k.to_f64()), fmt));
        }
        // The clamp range must span exactly [Q(lo), Q(hi)]: if dedup or a
        // non-monotone key placement dropped the hi endpoint, re-append
        // it so out-of-range inputs clamp to f(hi) rather than to some
        // interior sample.
        let k_hi = Fx::from_f64(hi, fmt);
        if keys.last().is_none_or(|last| last.raw() < k_hi.raw()) {
            keys.push(k_hi);
            values.push(Fx::from_f64(f(k_hi.to_f64()), fmt));
        }
        Ok(ApproxLut {
            keys,
            values,
            fmt,
            sampling,
        })
    }

    /// Number of stored entries (after key deduplication).
    pub fn entries(&self) -> usize {
        self.keys.len()
    }

    /// The value format of keys and entries.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// The sampling strategy the table was built with.
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// The stored keys, ascending.
    pub fn keys(&self) -> &[Fx] {
        &self.keys
    }

    /// The stored values, parallel to [`keys`](Self::keys).
    pub fn values(&self) -> &[Fx] {
        &self.values
    }

    /// Size of the table image in bits (key + value per entry), as stored
    /// in block RAM by the generator.
    pub fn image_bits(&self) -> u64 {
        2 * self.fmt.total_bits() as u64 * self.keys.len() as u64
    }

    /// Evaluates the table at a fixed-point input.
    ///
    /// Inputs outside the sampled range clamp to the first/last entry, as
    /// the hardware comparator chain does.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s format differs from the table format.
    pub fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), self.fmt, "LUT input format mismatch");
        let n = self.keys.len();
        if x <= self.keys[0] {
            return self.values[0];
        }
        if x >= self.keys[n - 1] {
            return self.values[n - 1];
        }
        // Binary search for the surrounding segment (hardware uses a
        // comparator tree of the same depth).
        let idx = match self.keys.binary_search_by(|k| k.raw().cmp(&x.raw())) {
            Ok(i) => return self.values[i], // exact hit reads straight out
            Err(i) => i,
        };
        let (k0, k1) = (self.keys[idx - 1], self.keys[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        // v0 + (v1 - v0) * (x - k0) / (k1 - k0), evaluated in raw integers
        // to mirror the interpolator datapath.
        let dx = (x.raw() - k0.raw()) as i128;
        let span = (k1.raw() - k0.raw()) as i128;
        let dv = (v1.raw() - v0.raw()) as i128;
        let raw = v0.raw() as i128 + dv * dx / span;
        Fx::from_raw(
            raw.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
            self.fmt,
        )
    }

    /// Convenience: quantise an `f64`, evaluate, return `f64`.
    pub fn eval_f64(&self, x: f64) -> f64 {
        self.eval(Fx::from_f64(x, self.fmt)).to_f64()
    }

    /// Maximum absolute error against `f` over a dense probe of the range.
    pub fn max_error(&self, f: impl Fn(f64) -> f64, probes: usize) -> f64 {
        let lo = self.keys[0].to_f64();
        let hi = self.keys[self.keys.len() - 1].to_f64();
        let mut worst = 0.0f64;
        for i in 0..=probes {
            let x = lo + (hi - lo) * i as f64 / probes as f64;
            let e = (self.eval_f64(x) - f(x)).abs();
            worst = worst.max(e);
        }
        worst
    }
}

/// Places `entries` keys so each segment carries roughly equal curvature
/// mass, using a dense second-difference estimate of `|f''|`.
fn error_equalizing_keys(f: &impl Fn(f64) -> f64, lo: f64, hi: f64, entries: usize) -> Vec<f64> {
    const DENSE: usize = 1024;
    let h = (hi - lo) / DENSE as f64;
    // Curvature density at each dense point, floored so flat regions still
    // receive keys.
    let mut density = Vec::with_capacity(DENSE);
    for i in 0..DENSE {
        let x = lo + h * (i as f64 + 0.5);
        let f2 = (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
        density.push(f2.abs().sqrt() + 1e-3);
    }
    let total: f64 = density.iter().sum();
    let mut keys = Vec::with_capacity(entries);
    keys.push(lo);
    let per_segment = total / (entries - 1) as f64;
    let mut acc = 0.0;
    let mut next = per_segment;
    for (i, d) in density.iter().enumerate() {
        acc += d;
        while acc >= next && keys.len() < entries - 1 {
            keys.push(lo + h * (i as f64 + 1.0));
            next += per_segment;
        }
    }
    while keys.len() < entries - 1 {
        keys.push(hi - (hi - lo) * 1e-6 * (entries - keys.len()) as f64);
    }
    keys.push(hi);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Rounding;

    fn sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    #[test]
    fn exact_key_hits_read_stored_value() {
        let lut = ApproxLut::sample(sigmoid, -8.0, 8.0, 32, QFormat::Q8_8, Sampling::Uniform)
            .expect("valid lut");
        for (k, v) in lut.keys().iter().zip(lut.values()) {
            assert_eq!(lut.eval(*k), *v);
        }
    }

    #[test]
    fn interpolation_beats_nearest_entry() {
        let lut = ApproxLut::sample(sigmoid, -8.0, 8.0, 16, QFormat::Q8_8, Sampling::Uniform)
            .expect("valid lut");
        // Mid-segment point: the interpolated value must land between the
        // surrounding entries.
        let x = 0.55;
        let y = lut.eval_f64(x);
        assert!(
            (y - sigmoid(x)).abs() < 0.05,
            "err {}",
            (y - sigmoid(x)).abs()
        );
    }

    #[test]
    fn clamps_outside_range() {
        let lut = ApproxLut::sample(sigmoid, -4.0, 4.0, 16, QFormat::Q8_8, Sampling::Uniform)
            .expect("valid lut");
        assert_eq!(
            lut.eval_f64(100.0),
            lut.values()[lut.entries() - 1].to_f64()
        );
        assert_eq!(lut.eval_f64(-100.0), lut.values()[0].to_f64());
    }

    #[test]
    fn more_entries_reduce_error() {
        let coarse = ApproxLut::sample(sigmoid, -8.0, 8.0, 8, QFormat::Q16_16, Sampling::Uniform)
            .expect("valid lut");
        let fine = ApproxLut::sample(sigmoid, -8.0, 8.0, 128, QFormat::Q16_16, Sampling::Uniform)
            .expect("valid lut");
        assert!(fine.max_error(sigmoid, 500) < coarse.max_error(sigmoid, 500));
    }

    #[test]
    fn error_equalizing_beats_uniform_on_curvy_function() {
        let f = |x: f64| x.tanh();
        let uni = ApproxLut::sample(f, -6.0, 6.0, 24, QFormat::Q16_16, Sampling::Uniform)
            .expect("valid lut");
        let eq = ApproxLut::sample(f, -6.0, 6.0, 24, QFormat::Q16_16, Sampling::ErrorEqualizing)
            .expect("valid lut");
        let (eu, ee) = (uni.max_error(f, 2000), eq.max_error(f, 2000));
        assert!(
            ee <= eu * 1.05,
            "error-equalizing ({ee}) should not lose to uniform ({eu})"
        );
    }

    #[test]
    fn rejects_tiny_tables_and_bad_ranges() {
        assert!(matches!(
            ApproxLut::sample(sigmoid, -1.0, 1.0, 1, QFormat::Q8_8, Sampling::Uniform),
            Err(BuildLutError::TooFewEntries(1))
        ));
        assert!(matches!(
            ApproxLut::sample(sigmoid, 1.0, -1.0, 8, QFormat::Q8_8, Sampling::Uniform),
            Err(BuildLutError::EmptyRange { .. })
        ));
    }

    #[test]
    fn image_bits_counts_keys_and_values() {
        let lut = ApproxLut::sample(sigmoid, -4.0, 4.0, 16, QFormat::Q8_8, Sampling::Uniform)
            .expect("valid lut");
        assert_eq!(lut.image_bits(), 2 * 16 * lut.entries() as u64);
    }

    #[test]
    fn monotone_function_yields_monotone_table() {
        let lut = ApproxLut::sample(sigmoid, -8.0, 8.0, 64, QFormat::Q16_16, Sampling::Uniform)
            .expect("valid lut");
        for w in lut.values().windows(2) {
            assert!(w[0].raw() <= w[1].raw());
        }
    }

    #[test]
    fn endpoints_survive_quantisation_and_dedup() {
        // 256 sample points over a range with only ~253 representable
        // Q4_4 keys: the pigeonhole principle forces key collisions, and
        // the dedup used to be able to drop the final `hi` key,
        // shrinking the clamp range.
        for sampling in [Sampling::Uniform, Sampling::ErrorEqualizing] {
            let lut = ApproxLut::sample(sigmoid, -7.9, 7.9, 256, QFormat::Q4_4, sampling)
                .expect("valid lut");
            assert_eq!(
                lut.keys()[0],
                Fx::from_f64(-7.9, QFormat::Q4_4),
                "{sampling:?}: first key must be the quantised lo endpoint"
            );
            assert_eq!(
                *lut.keys().last().expect("non-empty"),
                Fx::from_f64(7.9, QFormat::Q4_4),
                "{sampling:?}: last key must be the quantised hi endpoint"
            );
            for w in lut.keys().windows(2) {
                assert!(
                    w[0].raw() < w[1].raw(),
                    "{sampling:?}: keys must stay strictly ascending"
                );
            }
        }
    }

    #[test]
    fn requantize_interplay() {
        // LUT in a wide format evaluated from a narrow datapath value.
        let lut = ApproxLut::sample(sigmoid, -8.0, 8.0, 64, QFormat::Q16_16, Sampling::Uniform)
            .expect("valid lut");
        let narrow = Fx::from_f64(1.25, QFormat::Q8_8);
        let wide = narrow.requantize(QFormat::Q16_16, Rounding::Truncate);
        let y = lut.eval(wide).to_f64();
        assert!((y - sigmoid(1.25)).abs() < 0.01);
    }
}
