//! FPGA resource cost model for building blocks.
//!
//! Costs are expressed in Zynq-7000-class primitives (DSP48E1 slices,
//! 6-input LUTs, flip-flops, block-RAM bits). The per-block formulas are
//! first-order estimates calibrated so that whole-accelerator totals land
//! in the range of paper Table 3; they are *relative* models — the folding
//! planner only needs ordering and proportionality, not exact placement
//! results.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Resource usage of a block or a whole design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct ResourceCost {
    /// DSP48 slices (hard multipliers).
    pub dsp: u32,
    /// 6-input look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Block-RAM bits.
    pub bram_bits: u64,
}

impl ResourceCost {
    /// Zero cost.
    pub const ZERO: ResourceCost = ResourceCost {
        dsp: 0,
        lut: 0,
        ff: 0,
        bram_bits: 0,
    };

    /// A cost with only the logic fields set.
    pub fn logic(dsp: u32, lut: u32, ff: u32) -> Self {
        ResourceCost {
            dsp,
            lut,
            ff,
            bram_bits: 0,
        }
    }

    /// Whether this cost fits inside `budget` on every axis.
    pub fn fits_in(&self, budget: &ResourceCost) -> bool {
        self.dsp <= budget.dsp
            && self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.bram_bits <= budget.bram_bits
    }

    /// The fraction of `budget` consumed on the tightest axis, in
    /// `[0, +inf)`; values above 1 mean the cost does not fit.
    pub fn utilization(&self, budget: &ResourceCost) -> f64 {
        let mut worst = 0.0f64;
        if budget.dsp > 0 {
            worst = worst.max(self.dsp as f64 / budget.dsp as f64);
        } else if self.dsp > 0 {
            return f64::INFINITY;
        }
        if budget.lut > 0 {
            worst = worst.max(self.lut as f64 / budget.lut as f64);
        } else if self.lut > 0 {
            return f64::INFINITY;
        }
        if budget.ff > 0 {
            worst = worst.max(self.ff as f64 / budget.ff as f64);
        } else if self.ff > 0 {
            return f64::INFINITY;
        }
        if budget.bram_bits > 0 {
            worst = worst.max(self.bram_bits as f64 / budget.bram_bits as f64);
        } else if self.bram_bits > 0 {
            return f64::INFINITY;
        }
        worst
    }
}

impl Add for ResourceCost {
    type Output = ResourceCost;

    fn add(self, rhs: ResourceCost) -> ResourceCost {
        ResourceCost {
            dsp: self.dsp + rhs.dsp,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram_bits: self.bram_bits + rhs.bram_bits,
        }
    }
}

impl AddAssign for ResourceCost {
    fn add_assign(&mut self, rhs: ResourceCost) {
        *self = *self + rhs;
    }
}

impl Mul<u32> for ResourceCost {
    type Output = ResourceCost;

    fn mul(self, n: u32) -> ResourceCost {
        ResourceCost {
            dsp: self.dsp * n,
            lut: self.lut * n,
            ff: self.ff * n,
            bram_bits: self.bram_bits * n as u64,
        }
    }
}

impl Sum for ResourceCost {
    fn sum<I: Iterator<Item = ResourceCost>>(iter: I) -> ResourceCost {
        iter.fold(ResourceCost::ZERO, |a, b| a + b)
    }
}

/// DSP slices needed for one `width`-bit multiplier (a DSP48E1 multiplies
/// 18×25; wider operands cascade).
pub fn dsps_per_multiplier(width: u32) -> u32 {
    if width <= 18 {
        1
    } else {
        2 + (width.saturating_sub(18)) / 17
    }
}

/// LUTs for a `width`-bit ripple/carry adder.
pub fn adder_luts(width: u32) -> u32 {
    width
}

/// LUTs for a `width`-bit 2:1 mux.
pub fn mux_luts(width: u32) -> u32 {
    width.div_ceil(2)
}

/// LUTs for a `width`-bit comparator.
pub fn comparator_luts(width: u32) -> u32 {
    width.div_ceil(2) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_and_sum() {
        let a = ResourceCost::logic(1, 10, 5);
        let b = ResourceCost {
            dsp: 0,
            lut: 2,
            ff: 3,
            bram_bits: 1024,
        };
        let c = a + b;
        assert_eq!(c.dsp, 1);
        assert_eq!(c.lut, 12);
        assert_eq!(c.bram_bits, 1024);
        let total: ResourceCost = [a, b, c].into_iter().sum();
        assert_eq!(total.lut, 24);
    }

    #[test]
    fn scalar_multiply() {
        let a = ResourceCost::logic(1, 8, 4) * 3;
        assert_eq!(a.dsp, 3);
        assert_eq!(a.lut, 24);
    }

    #[test]
    fn fits_and_utilization() {
        let budget = ResourceCost {
            dsp: 10,
            lut: 100,
            ff: 100,
            bram_bits: 1 << 20,
        };
        let half = ResourceCost::logic(5, 50, 10);
        assert!(half.fits_in(&budget));
        assert!((half.utilization(&budget) - 0.5).abs() < 1e-12);
        let over = ResourceCost::logic(11, 10, 10);
        assert!(!over.fits_in(&budget));
        assert!(over.utilization(&budget) > 1.0);
    }

    #[test]
    fn zero_budget_axis() {
        let budget = ResourceCost::logic(0, 100, 100);
        assert_eq!(
            ResourceCost::logic(1, 0, 0).utilization(&budget),
            f64::INFINITY
        );
        assert_eq!(ResourceCost::logic(0, 50, 0).utilization(&budget), 0.5);
    }

    #[test]
    fn dsp_cascading() {
        assert_eq!(dsps_per_multiplier(8), 1);
        assert_eq!(dsps_per_multiplier(16), 1);
        assert_eq!(dsps_per_multiplier(18), 1);
        assert_eq!(dsps_per_multiplier(24), 2);
        assert_eq!(dsps_per_multiplier(35), 3);
    }

    #[test]
    fn primitive_helpers() {
        assert_eq!(adder_luts(16), 16);
        assert_eq!(mux_luts(16), 8);
        assert_eq!(comparator_luts(16), 9);
    }
}
