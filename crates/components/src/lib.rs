//! The DeepBurning building-block library (paper Fig. 5).
//!
//! Each block is a *reconfigurable component*: its Rust descriptor carries
//! the generation-time parameters ("the input bit-width, the neuron-level
//! parallelism, and disablable ports or functions"), and every block can
//! emit synthesisable Verilog ([`Block::generate`]), report its FPGA
//! resource footprint ([`Block::cost`]) and — where arithmetic is involved —
//! simulate its fixed-point behaviour.
//!
//! # Examples
//!
//! ```
//! use deepburning_components::{Block, SynergyNeuron};
//! use deepburning_verilog::{lint_design, Design};
//!
//! let neuron = SynergyNeuron::new(16, 8);
//! let module = neuron.generate();
//! assert!(lint_design(&Design::new(module)).is_clean());
//! assert_eq!(neuron.cost().dsp, 8);
//! ```

mod control;
mod cost;
mod datapath;
mod memory;
mod perf;

pub use control::{AguBlock, AguClass, AguPattern, Coordinator};
pub use cost::{adder_luts, comparator_luts, dsps_per_multiplier, mux_luts, ResourceCost};
pub use datapath::{
    AccumulatorBlock, ActivationUnit, DropOutUnit, KSorter, PoolingUnit, SynergyNeuron,
};
pub use memory::{ApproxLutBlock, BufferBlock, ConnectionBox, LrnUnit};
pub use perf::{
    PerfCounters, PERF_REG_NAMES, PERF_SEL_ACTIVE, PERF_SEL_BUF_READS, PERF_SEL_BUF_WRITES,
    PERF_SEL_BURSTS, PERF_SEL_CYCLES, PERF_SEL_MACS, PERF_SEL_PEAK, PERF_SEL_STALL,
};

use deepburning_verilog::VModule;

/// A reconfigurable building block from the NN component library.
///
/// Implementors are the bricks NN-Gen connects "into a top-view of hardware
/// NN structure".
pub trait Block {
    /// The (parameter-mangled) Verilog module name.
    fn module_name(&self) -> String;
    /// Emits the block's RTL.
    fn generate(&self) -> VModule;
    /// First-order FPGA resource footprint.
    fn cost(&self) -> ResourceCost;
    /// One-line human-readable configuration summary.
    fn describe(&self) -> String;
}

#[cfg(test)]
mod proptests {
    use super::*;
    use deepburning_verilog::{lint_design, Design};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn all_neuron_configs_lint(width in 4u32..32, lanes in 1u32..40) {
            let n = SynergyNeuron::new(width, lanes);
            prop_assert!(lint_design(&Design::new(n.generate())).is_clean());
        }

        #[test]
        fn agu_replay_equals_naive(start in 0u64..10_000, x_len in 1u32..20, y_len in 1u32..20,
                                   x_stride in 1u64..8, y_stride in 0u64..512, offset in 0u64..64) {
            let p = AguPattern { start, offset, x_len, y_len, x_stride, y_stride };
            // Naive enumeration.
            let mut naive = Vec::new();
            for y in 0..y_len as u64 {
                for x in 0..x_len as u64 {
                    naive.push(start + offset + y * y_stride + x * x_stride);
                }
            }
            let replay: Vec<u64> = p.addresses().collect();
            prop_assert_eq!(replay, naive);
        }

        #[test]
        fn agu_incremental_update_consistent(x_len in 2u32..16, y_len in 2u32..16,
                                             x_stride in 1u64..8, y_stride in 0u64..256) {
            // Walking the stream with the RTL's two constant adders (x_stride
            // on inner steps, wrap_step on wraps) reproduces the pattern.
            let p = AguPattern { start: 1000, offset: 0, x_len, y_len, x_stride, y_stride };
            let a = 32u32;
            let mask = (1u64 << a) - 1;
            let expected: Vec<u64> = p.addresses().map(|v| v & mask).collect();
            let mut walked = vec![expected[0]];
            let mut cur = expected[0];
            for step in 1..expected.len() {
                let inner = step % x_len as usize != 0;
                cur = if inner {
                    (cur + (p.x_stride & mask)) & mask
                } else {
                    (cur + p.wrap_step(a)) & mask
                };
                walked.push(cur);
            }
            prop_assert_eq!(walked, expected);
        }

        #[test]
        fn costs_are_monotone_in_width(width in 4u32..28) {
            let narrow = SynergyNeuron::new(width, 4).cost();
            let wide = SynergyNeuron::new(width + 4, 4).cost();
            prop_assert!(wide.lut >= narrow.lut);
            prop_assert!(wide.dsp >= narrow.dsp);
        }

        #[test]
        fn buffer_capacity_exact(width in 1u32..128, depth in 1usize..4096) {
            let b = BufferBlock { width, depth };
            prop_assert_eq!(b.capacity_bits(), width as u64 * depth as u64);
            prop_assert_eq!(b.cost().bram_bits, b.capacity_bits());
        }
    }
}
