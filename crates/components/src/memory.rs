//! Storage-centric building blocks: on-chip buffers, the Approx LUT, the
//! connection box crossbar and the LRN unit built on top of them.

use crate::cost::{adder_luts, dsps_per_multiplier, mux_luts, ResourceCost};
use crate::Block;
use deepburning_fixed::{Accumulator, ApproxLut, Fx, QFormat, Rounding};
use deepburning_verilog::{
    BinaryOp, Expr, Item, NetDecl, Port, Sensitivity, Stmt, VModule,
};

/// Simple dual-port on-chip buffer (one write, one read port) backed by
/// block RAM. Feature and weight buffers are instances of this block with
/// widths chosen by the data-layout engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferBlock {
    /// Word width in bits (the "memory port width" of Method-1).
    pub width: u32,
    /// Number of words.
    pub depth: usize,
}

impl BufferBlock {
    /// Address width needed for `depth` words.
    pub fn addr_width(&self) -> u32 {
        usize::BITS - (self.depth.max(2) - 1).leading_zeros()
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.width as u64 * self.depth as u64
    }
}

impl Block for BufferBlock {
    fn module_name(&self) -> String {
        format!("buffer_w{}_d{}", self.width, self.depth)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let aw = self.addr_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("we", 1))
            .port(Port::input("waddr", aw))
            .port(Port::input("wdata", w))
            .port(Port::input("raddr", aw))
            .port(Port::output("rdata", w));
        m.item(Item::Net(NetDecl::memory("mem", w, self.depth)));
        m.item(Item::Net(NetDecl::reg("rdata_r", w)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![
                Stmt::If {
                    cond: Expr::id("we"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("waddr"))),
                        Expr::id("wdata"),
                    )],
                    else_body: vec![],
                },
                Stmt::NonBlocking(
                    Expr::id("rdata_r"),
                    Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("raddr"))),
                ),
            ],
        });
        m.item(Item::Assign {
            lhs: Expr::id("rdata"),
            rhs: Expr::id("rdata_r"),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        ResourceCost {
            dsp: 0,
            lut: 8, // address decode glue
            ff: self.width,
            bram_bits: self.capacity_bits(),
        }
    }

    fn describe(&self) -> String {
        format!("on-chip buffer: {} x {} bits", self.depth, self.width)
    }
}

/// The Approx LUT block: a uniformly-sampled value+slope ROM with a linear
/// interpolator, serving activation functions and other "complex functions
/// that cannot be efficiently mapped into logical gates".
///
/// The ROM *content* comes from the compiler (an [`ApproxLut`] image); the
/// hardware indexes with the high input bits and interpolates with the low
/// bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxLutBlock {
    /// Datapath word width.
    pub width: u32,
    /// Table entries (power of two for shift indexing).
    pub entries: usize,
    /// The sampled function image filled in by the compiler.
    pub image: ApproxLut,
}

impl ApproxLutBlock {
    /// Builds the block around a compiler-produced table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(width: u32, image: ApproxLut) -> Self {
        let entries = image.entries().next_power_of_two();
        ApproxLutBlock {
            width,
            entries,
            image,
        }
    }

    /// Behavioural model: evaluate through the stored image.
    pub fn simulate(&self, x: Fx) -> Fx {
        self.image.eval(x)
    }
}

impl Block for ApproxLutBlock {
    fn module_name(&self) -> String {
        format!("approx_lut_w{}_e{}", self.width, self.entries)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let idx_bits = (self.entries.max(2) - 1).ilog2() + 1;
        let frac_bits = w.saturating_sub(idx_bits).max(1);
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("din", w))
            .port(Port::output("dout", w));
        m.item(Item::Comment(
            "value/slope ROM content is written by the NN-Gen compiler".into(),
        ));
        m.item(Item::Net(NetDecl::memory("value_rom", w, self.entries)));
        m.item(Item::Net(NetDecl::memory("slope_rom", w, self.entries)));
        m.item(Item::Net(NetDecl::wire("index", idx_bits)));
        m.item(Item::Assign {
            lhs: Expr::id("index"),
            rhs: Expr::Slice(Box::new(Expr::id("din")), w - 1, w - idx_bits),
        });
        // Low bits of the input drive the interpolation distance.
        m.item(Item::Net(NetDecl::wire("delta", w)));
        m.item(Item::Assign {
            lhs: Expr::id("delta"),
            rhs: Expr::Concat(vec![
                Expr::lit(idx_bits, 0),
                Expr::Slice(Box::new(Expr::id("din")), frac_bits - 1, 0),
            ]),
        });
        m.item(Item::Net(NetDecl::reg("base_val", w)));
        m.item(Item::Net(NetDecl::reg("slope_val", w)));
        m.item(Item::Net(NetDecl::reg("delta_q", w)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![
                Stmt::NonBlocking(
                    Expr::id("base_val"),
                    Expr::Index(Box::new(Expr::id("value_rom")), Box::new(Expr::id("index"))),
                ),
                Stmt::NonBlocking(
                    Expr::id("slope_val"),
                    Expr::Index(Box::new(Expr::id("slope_rom")), Box::new(Expr::id("index"))),
                ),
                Stmt::NonBlocking(Expr::id("delta_q"), Expr::id("delta")),
            ],
        });
        // dout = base + ((slope * delta) >>> frac_bits)
        m.item(Item::Net(NetDecl::wire("interp", w)));
        m.item(Item::Assign {
            lhs: Expr::id("interp"),
            rhs: Expr::bin(
                BinaryOp::Shr,
                Expr::bin(BinaryOp::Mul, Expr::id("slope_val"), Expr::id("delta_q")),
                Expr::lit(w, frac_bits as u64),
            ),
        });
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::bin(BinaryOp::Add, Expr::id("base_val"), Expr::id("interp")),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        ResourceCost {
            dsp: dsps_per_multiplier(self.width),
            lut: adder_luts(self.width) + mux_luts(self.width),
            ff: self.width * 3,
            bram_bits: 2 * self.width as u64 * self.entries as u64,
        }
    }

    fn describe(&self) -> String {
        format!(
            "approx LUT: {} entries x {} bits (+slope), interpolating",
            self.entries, self.width
        )
    }
}

/// The connection box: a registered crossbar exchanging intermediate
/// values between producer and consumer blocks, plus the shifting latch
/// used for approximate division (average pooling, normalisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionBox {
    /// Word width in bits.
    pub width: u32,
    /// Crossbar input port count.
    pub inputs: u32,
    /// Crossbar output port count.
    pub outputs: u32,
}

impl ConnectionBox {
    /// Width of one output's select field.
    pub fn select_width(&self) -> u32 {
        32 - (self.inputs.max(2) - 1).leading_zeros()
    }

    /// Behavioural model: route + shift.
    ///
    /// # Panics
    ///
    /// Panics if `select` is out of range.
    pub fn simulate(&self, inputs: &[Fx], select: usize, shift: u32) -> Fx {
        assert!(select < inputs.len(), "crossbar select out of range");
        inputs[select].shift_right(shift)
    }
}

impl Block for ConnectionBox {
    fn module_name(&self) -> String {
        format!("connection_box_w{}_i{}_o{}", self.width, self.inputs, self.outputs)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let sw = self.select_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("din", w * self.inputs))
            .port(Port::input("sel", sw * self.outputs))
            .port(Port::input("shift", 4 * self.outputs))
            .port(Port::output("dout", w * self.outputs));
        for o in 0..self.outputs {
            let sel = Expr::Slice(Box::new(Expr::id("sel")), (o + 1) * sw - 1, o * sw);
            let shift = Expr::Slice(Box::new(Expr::id("shift")), (o + 1) * 4 - 1, o * 4);
            // Mux chain over inputs.
            let mut val = Expr::Slice(Box::new(Expr::id("din")), w - 1, 0);
            for i in 1..self.inputs {
                val = Expr::Ternary(
                    Box::new(Expr::bin(BinaryOp::Eq, sel.clone(), Expr::lit(sw, i as u64))),
                    Box::new(Expr::Slice(
                        Box::new(Expr::id("din")),
                        (i + 1) * w - 1,
                        i * w,
                    )),
                    Box::new(val),
                );
            }
            let routed = format!("routed{o}");
            m.item(Item::Net(NetDecl::wire(&routed, w)));
            m.item(Item::Assign {
                lhs: Expr::id(&routed),
                rhs: val,
            });
            let latched = format!("latched{o}");
            m.item(Item::Net(NetDecl::reg(&latched, w)));
            // Shifting latch: register the routed value shifted right.
            m.item(Item::Always {
                sensitivity: Sensitivity::PosEdge("clk".into()),
                body: vec![Stmt::NonBlocking(
                    Expr::id(&latched),
                    Expr::bin(
                        BinaryOp::Shr,
                        Expr::id(&routed),
                        Expr::Concat(vec![Expr::lit(w - 4, 0), shift]),
                    ),
                )],
            });
            m.item(Item::Assign {
                lhs: Expr::Slice(Box::new(Expr::id("dout")), (o + 1) * w - 1, o * w),
                rhs: Expr::id(&latched),
            });
        }
        m
    }

    fn cost(&self) -> ResourceCost {
        let mux = mux_luts(self.width) * (self.inputs - 1).max(1);
        let shifter = adder_luts(self.width); // barrel shifter approximation
        ResourceCost::logic(0, (mux + shifter) * self.outputs, self.width * self.outputs)
    }

    fn describe(&self) -> String {
        format!(
            "connection box: {}x{} crossbar, {} bits, shifting latch",
            self.inputs, self.outputs, self.width
        )
    }
}

/// LRN unit: squares and accumulates a channel neighbourhood, looks up the
/// normalisation factor `(1 + α/n · s)^{-β}` in an Approx LUT and scales
/// the centre value.
#[derive(Debug, Clone, PartialEq)]
pub struct LrnUnit {
    /// Word width in bits.
    pub width: u32,
    /// Channels in the normalisation window.
    pub local_size: usize,
    /// The normalisation-factor table (filled by the compiler).
    pub factor_lut: ApproxLut,
}

impl LrnUnit {
    /// Builds the unit with a compiler-sampled factor table.
    pub fn new(width: u32, local_size: usize, alpha: f64, beta: f64, fmt: QFormat) -> Self {
        let factor_lut = ApproxLut::sample(
            |s| (1.0 + alpha / local_size as f64 * s).powf(-beta),
            0.0,
            fmt.max_value(),
            64,
            fmt,
            deepburning_fixed::Sampling::Uniform,
        )
        .expect("LRN factor table over a non-empty range");
        LrnUnit {
            width,
            local_size,
            factor_lut,
        }
    }

    /// Behavioural model: normalise `centre` against its `window`.
    pub fn simulate(&self, centre: Fx, window: &[Fx], fmt: QFormat) -> Fx {
        let mut acc = Accumulator::new(fmt);
        for v in window {
            acc.mac(*v, *v);
        }
        let s = acc.resolve(Rounding::Truncate);
        let factor = self.factor_lut.eval(s);
        centre * factor
    }
}

impl Block for LrnUnit {
    fn module_name(&self) -> String {
        format!("lrn_w{}_n{}", self.width, self.local_size)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("en", 1))
            .port(Port::input("din", w))
            .port(Port::input("centre", w))
            .port(Port::output("dout", w));
        // Square-and-accumulate the window stream.
        m.item(Item::Net(NetDecl::wire("sq", w)));
        m.item(Item::Assign {
            lhs: Expr::id("sq"),
            rhs: Expr::bin(BinaryOp::Mul, Expr::id("din"), Expr::id("din")),
        });
        m.item(Item::Net(NetDecl::reg("energy", w)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![Stmt::NonBlocking(Expr::id("energy"), Expr::lit(w, 0))],
                else_body: vec![Stmt::If {
                    cond: Expr::id("en"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::id("energy"),
                        Expr::bin(BinaryOp::Add, Expr::id("energy"), Expr::id("sq")),
                    )],
                    else_body: vec![],
                }],
            }],
        });
        // Normalisation factor from the embedded Approx LUT instance.
        m.item(Item::Net(NetDecl::wire("factor", w)));
        let lut = ApproxLutBlock::new(w, self.factor_lut.clone());
        m.item(Item::Instance {
            module: lut.module_name(),
            name: "u_factor_lut".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), Expr::id("clk")),
                ("din".into(), Expr::id("energy")),
                ("dout".into(), Expr::id("factor")),
            ],
        });
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::bin(BinaryOp::Mul, Expr::id("centre"), Expr::id("factor")),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        let lut_block = ApproxLutBlock::new(self.width, self.factor_lut.clone());
        ResourceCost::logic(
            dsps_per_multiplier(self.width) * 2,
            adder_luts(self.width),
            self.width,
        ) + lut_block.cost()
    }

    fn describe(&self) -> String {
        format!("LRN unit: window {}, {} bits", self.local_size, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_fixed::Sampling;
    use deepburning_verilog::{lint_design, Design};

    const F: QFormat = QFormat::Q8_8;

    fn sigmoid_lut() -> ApproxLut {
        ApproxLut::sample(
            |x| 1.0 / (1.0 + (-x).exp()),
            -8.0,
            8.0,
            64,
            F,
            Sampling::Uniform,
        )
        .expect("valid lut")
    }

    #[test]
    fn buffer_rtl_lints_clean() {
        let b = BufferBlock { width: 64, depth: 512 };
        assert!(lint_design(&Design::new(b.generate())).is_clean());
        assert_eq!(b.addr_width(), 9);
        assert_eq!(b.capacity_bits(), 64 * 512);
    }

    #[test]
    fn buffer_cost_counts_bram() {
        let b = BufferBlock { width: 32, depth: 1024 };
        assert_eq!(b.cost().bram_bits, 32 * 1024);
        assert_eq!(b.cost().dsp, 0);
    }

    #[test]
    fn approx_lut_block_lints_clean() {
        let b = ApproxLutBlock::new(16, sigmoid_lut());
        let report = lint_design(&Design::new(b.generate()));
        assert!(report.is_clean(), "{report}");
        assert_eq!(b.entries, 64);
    }

    #[test]
    fn approx_lut_block_simulates_through_image() {
        let b = ApproxLutBlock::new(16, sigmoid_lut());
        let y = b.simulate(Fx::from_f64(0.0, F));
        assert!((y.to_f64() - 0.5).abs() < 0.01);
    }

    #[test]
    fn connection_box_lints_clean() {
        let c = ConnectionBox {
            width: 16,
            inputs: 4,
            outputs: 2,
        };
        let report = lint_design(&Design::new(c.generate()));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn connection_box_routes_and_shifts() {
        let c = ConnectionBox {
            width: 16,
            inputs: 4,
            outputs: 1,
        };
        let ins: Vec<Fx> = [1.0, 8.0, 3.0, 4.0].iter().map(|&v| Fx::from_f64(v, F)).collect();
        assert_eq!(c.simulate(&ins, 1, 0).to_f64(), 8.0);
        // Shifting latch: divide by 4.
        assert_eq!(c.simulate(&ins, 1, 2).to_f64(), 2.0);
    }

    #[test]
    fn lrn_unit_lints_clean_with_embedded_lut() {
        let u = LrnUnit::new(16, 5, 1e-4, 0.75, F);
        let lut_block = ApproxLutBlock::new(16, u.factor_lut.clone());
        let mut d = Design::new(u.generate());
        d.add_module(lut_block.generate());
        let report = lint_design(&d);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn lrn_suppression_direction() {
        let u = LrnUnit::new(16, 3, 1.0, 0.75, F);
        let quiet: Vec<Fx> = [0.0, 1.0, 0.0].iter().map(|&v| Fx::from_f64(v, F)).collect();
        let loud: Vec<Fx> = [5.0, 1.0, 5.0].iter().map(|&v| Fx::from_f64(v, F)).collect();
        let centre = Fx::from_f64(1.0, F);
        let yq = u.simulate(centre, &quiet, F).to_f64();
        let yl = u.simulate(centre, &loud, F).to_f64();
        assert!(yl < yq, "loud {yl} should be below quiet {yq}");
    }

    #[test]
    fn costs_accumulate_sensibly() {
        let total = BufferBlock { width: 64, depth: 256 }.cost()
            + ApproxLutBlock::new(16, sigmoid_lut()).cost();
        assert!(total.bram_bits > 64 * 256);
        assert!(total.dsp >= 1);
    }
}
