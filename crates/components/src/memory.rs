//! Storage-centric building blocks: on-chip buffers, the Approx LUT, the
//! connection box crossbar and the LRN unit built on top of them.

use crate::cost::{adder_luts, comparator_luts, dsps_per_multiplier, mux_luts, ResourceCost};
use crate::datapath::{saturate_expr, sign_extend_expr};
use crate::Block;
use deepburning_fixed::{Accumulator, ApproxLut, Fx, QFormat, Rounding};
use deepburning_verilog::{
    BinaryOp, Expr, Item, NetDecl, Port, Sensitivity, Stmt, UnaryOp, VModule,
};

fn mem_read(mem: &str, index: Expr) -> Expr {
    Expr::Index(Box::new(Expr::id(mem)), Box::new(index))
}

/// Simple dual-port on-chip buffer (one write, one read port) backed by
/// block RAM. Feature and weight buffers are instances of this block with
/// widths chosen by the data-layout engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferBlock {
    /// Word width in bits (the "memory port width" of Method-1).
    pub width: u32,
    /// Number of words.
    pub depth: usize,
}

impl BufferBlock {
    /// Address width needed for `depth` words.
    pub fn addr_width(&self) -> u32 {
        usize::BITS - (self.depth.max(2) - 1).leading_zeros()
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.width as u64 * self.depth as u64
    }
}

impl Block for BufferBlock {
    fn module_name(&self) -> String {
        format!("buffer_w{}_d{}", self.width, self.depth)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let aw = self.addr_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("we", 1))
            .port(Port::input("waddr", aw))
            .port(Port::input("wdata", w))
            .port(Port::input("raddr", aw))
            .port(Port::output("rdata", w));
        m.item(Item::Net(NetDecl::memory("mem", w, self.depth)));
        m.item(Item::Net(NetDecl::reg("rdata_r", w)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![
                Stmt::If {
                    cond: Expr::id("we"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("waddr"))),
                        Expr::id("wdata"),
                    )],
                    else_body: vec![],
                },
                Stmt::NonBlocking(
                    Expr::id("rdata_r"),
                    Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("raddr"))),
                ),
            ],
        });
        m.item(Item::Assign {
            lhs: Expr::id("rdata"),
            rhs: Expr::id("rdata_r"),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        ResourceCost {
            dsp: 0,
            lut: 8, // address decode glue
            ff: self.width,
            bram_bits: self.capacity_bits(),
        }
    }

    fn describe(&self) -> String {
        format!("on-chip buffer: {} x {} bits", self.depth, self.width)
    }
}

/// The Approx LUT block: key/value ROMs, a comparator chain that locates
/// the surrounding segment, and a linear interpolator — serving activation
/// functions and other "complex functions that cannot be efficiently mapped
/// into logical gates".
///
/// The ROM *content* comes from the compiler (an [`ApproxLut`] image); the
/// generated datapath reproduces [`ApproxLut::eval`] bit-for-bit: clamp at
/// the range ends, exact read-out on a key hit, and
/// `v0 + (v1 - v0) * (x - k0) / (k1 - k0)` in raw integers in between.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxLutBlock {
    /// Datapath word width.
    pub width: u32,
    /// Allocated ROM depth (entries rounded up to a power of two).
    pub entries: usize,
    /// The sampled function image filled in by the compiler.
    pub image: ApproxLut,
}

impl ApproxLutBlock {
    /// Builds the block around a compiler-produced table.
    pub fn new(width: u32, image: ApproxLut) -> Self {
        let entries = image.entries().next_power_of_two();
        ApproxLutBlock {
            width,
            entries,
            image,
        }
    }

    /// Behavioural model: evaluate through the stored image.
    pub fn simulate(&self, x: Fx) -> Fx {
        self.image.eval(x)
    }

    /// Interpolator width: the slope-by-distance product carries up to
    /// `2 * width + 1` significant bits, capped at the interpreter's 64-bit
    /// signal limit.
    pub fn acc_width(&self) -> u32 {
        (2 * self.width + 2).min(64)
    }

    /// The key and value ROM images as raw bus words (masked to the
    /// datapath width, padded to the allocated depth), ready for the
    /// interpreter's `load_memory` backdoor — this is the "ROM content
    /// written by the compiler".
    pub fn rom_words(&self) -> (Vec<u64>, Vec<u64>) {
        let mask = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let pad = |v: &[Fx]| -> Vec<u64> {
            let mut words: Vec<u64> = v.iter().map(|x| x.raw() as u64 & mask).collect();
            let last = *words.last().expect("non-empty LUT image");
            words.resize(self.entries, last);
            words
        };
        (pad(self.image.keys()), pad(self.image.values()))
    }
}

impl Block for ApproxLutBlock {
    fn module_name(&self) -> String {
        format!("approx_lut_w{}_e{}", self.width, self.entries)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let n = self.image.entries();
        let aw = self.acc_width();
        let idx_bits = (self.entries.max(2) - 1).ilog2() + 1;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("din", w))
            .port(Port::output("dout", w));
        m.item(Item::Comment(
            "key/value ROM content is written by the NN-Gen compiler".into(),
        ));
        m.item(Item::Net(NetDecl::memory("key_rom", w, self.entries)));
        m.item(Item::Net(NetDecl::memory("val_rom", w, self.entries)));
        if n == 1 {
            m.item(Item::Assign {
                lhs: Expr::id("dout"),
                rhs: mem_read("val_rom", Expr::lit(idx_bits, 0)),
            });
            return m;
        }
        // Locate the segment: count the interior keys at or below the input
        // (signed). The chain is the linearised form of the comparator tree.
        let mut cnt = Expr::lit(idx_bits, 0);
        for i in 1..n.saturating_sub(1) {
            let ge = format!("ge{i}");
            m.item(Item::Net(NetDecl::wire(&ge, 1)));
            m.item(Item::Assign {
                lhs: Expr::id(&ge),
                rhs: Expr::Unary(
                    UnaryOp::Not,
                    Box::new(Expr::bin(
                        BinaryOp::Slt,
                        Expr::id("din"),
                        mem_read("key_rom", Expr::lit(idx_bits, i as u64)),
                    )),
                ),
            });
            let wide = if idx_bits > 1 {
                Expr::Concat(vec![Expr::lit(idx_bits - 1, 0), Expr::id(&ge)])
            } else {
                Expr::id(&ge)
            };
            cnt = Expr::bin(BinaryOp::Add, cnt, wide);
        }
        m.item(Item::Net(NetDecl::wire("seg", idx_bits)));
        m.item(Item::Assign {
            lhs: Expr::id("seg"),
            rhs: cnt,
        });
        // Segment endpoints.
        for (name, mem, off) in [
            ("k_lo", "key_rom", 0u64),
            ("k_hi", "key_rom", 1),
            ("v_lo", "val_rom", 0),
            ("v_hi", "val_rom", 1),
        ] {
            m.item(Item::Net(NetDecl::wire(name, w)));
            let index = if off == 0 {
                Expr::id("seg")
            } else {
                Expr::bin(BinaryOp::Add, Expr::id("seg"), Expr::lit(idx_bits, off))
            };
            m.item(Item::Assign {
                lhs: Expr::id(name),
                rhs: mem_read(mem, index),
            });
        }
        // Wide raw interpolation: v0 + (v1 - v0) * (x - k0) / (k1 - k0),
        // truncating toward zero exactly like the behavioural model.
        for (name, hi, lo) in [
            ("dx", "din", "k_lo"),
            ("span", "k_hi", "k_lo"),
            ("dv", "v_hi", "v_lo"),
        ] {
            m.item(Item::Net(NetDecl::wire(name, aw)));
            m.item(Item::Assign {
                lhs: Expr::id(name),
                rhs: Expr::bin(
                    BinaryOp::Sub,
                    sign_extend_expr(hi, w, aw),
                    sign_extend_expr(lo, w, aw),
                ),
            });
        }
        m.item(Item::Net(NetDecl::wire("interp", aw)));
        m.item(Item::Assign {
            lhs: Expr::id("interp"),
            rhs: Expr::bin(
                BinaryOp::Add,
                sign_extend_expr("v_lo", w, aw),
                Expr::bin(
                    BinaryOp::Div,
                    Expr::bin(BinaryOp::Mul, Expr::id("dv"), Expr::id("dx")),
                    Expr::id("span"),
                ),
            ),
        });
        // Clamp at the range ends; interior hits fall out of interpolation
        // with dx = 0.
        m.item(Item::Net(NetDecl::wire("below", 1)));
        m.item(Item::Assign {
            lhs: Expr::id("below"),
            rhs: Expr::Unary(
                UnaryOp::Not,
                Box::new(Expr::bin(
                    BinaryOp::Slt,
                    mem_read("key_rom", Expr::lit(idx_bits, 0)),
                    Expr::id("din"),
                )),
            ),
        });
        m.item(Item::Net(NetDecl::wire("above", 1)));
        m.item(Item::Assign {
            lhs: Expr::id("above"),
            rhs: Expr::Unary(
                UnaryOp::Not,
                Box::new(Expr::bin(
                    BinaryOp::Slt,
                    Expr::id("din"),
                    mem_read("key_rom", Expr::lit(idx_bits, (n - 1) as u64)),
                )),
            ),
        });
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::Ternary(
                Box::new(Expr::id("below")),
                Box::new(mem_read("val_rom", Expr::lit(idx_bits, 0))),
                Box::new(Expr::Ternary(
                    Box::new(Expr::id("above")),
                    Box::new(mem_read("val_rom", Expr::lit(idx_bits, (n - 1) as u64))),
                    Box::new(Expr::Slice(Box::new(Expr::id("interp")), w - 1, 0)),
                )),
            ),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        // Comparator tree of binary-search depth plus the interpolating
        // multiply/divide datapath.
        let depth = (self.entries.max(2) - 1).ilog2() + 1;
        ResourceCost {
            dsp: dsps_per_multiplier(self.width) * 2,
            lut: comparator_luts(self.width) * depth
                + adder_luts(self.width) * 3
                + mux_luts(self.width) * 2,
            ff: self.width,
            bram_bits: 2 * self.width as u64 * self.entries as u64,
        }
    }

    fn describe(&self) -> String {
        format!(
            "approx LUT: {} entries x {} bits (+slope), interpolating",
            self.entries, self.width
        )
    }
}

/// The connection box: a registered crossbar exchanging intermediate
/// values between producer and consumer blocks, plus the shifting latch
/// used for approximate division (average pooling, normalisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionBox {
    /// Word width in bits.
    pub width: u32,
    /// Crossbar input port count.
    pub inputs: u32,
    /// Crossbar output port count.
    pub outputs: u32,
}

impl ConnectionBox {
    /// Width of one output's select field.
    pub fn select_width(&self) -> u32 {
        32 - (self.inputs.max(2) - 1).leading_zeros()
    }

    /// Behavioural model: route + shift.
    ///
    /// # Panics
    ///
    /// Panics if `select` is out of range.
    pub fn simulate(&self, inputs: &[Fx], select: usize, shift: u32) -> Fx {
        assert!(select < inputs.len(), "crossbar select out of range");
        inputs[select].shift_right(shift)
    }
}

impl Block for ConnectionBox {
    fn module_name(&self) -> String {
        format!(
            "connection_box_w{}_i{}_o{}",
            self.width, self.inputs, self.outputs
        )
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let sw = self.select_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("din", w * self.inputs))
            .port(Port::input("sel", sw * self.outputs))
            .port(Port::input("shift", 4 * self.outputs))
            .port(Port::output("dout", w * self.outputs));
        for o in 0..self.outputs {
            let sel = Expr::Slice(Box::new(Expr::id("sel")), (o + 1) * sw - 1, o * sw);
            let shift = Expr::Slice(Box::new(Expr::id("shift")), (o + 1) * 4 - 1, o * 4);
            // Mux chain over inputs.
            let mut val = Expr::Slice(Box::new(Expr::id("din")), w - 1, 0);
            for i in 1..self.inputs {
                val = Expr::Ternary(
                    Box::new(Expr::bin(
                        BinaryOp::Eq,
                        sel.clone(),
                        Expr::lit(sw, i as u64),
                    )),
                    Box::new(Expr::Slice(
                        Box::new(Expr::id("din")),
                        (i + 1) * w - 1,
                        i * w,
                    )),
                    Box::new(val),
                );
            }
            let routed = format!("routed{o}");
            m.item(Item::Net(NetDecl::wire(&routed, w)));
            m.item(Item::Assign {
                lhs: Expr::id(&routed),
                rhs: val,
            });
            let latched = format!("latched{o}");
            m.item(Item::Net(NetDecl::reg(&latched, w)));
            // Shifting latch: register the routed value shifted right.
            m.item(Item::Always {
                sensitivity: Sensitivity::PosEdge("clk".into()),
                body: vec![Stmt::NonBlocking(
                    Expr::id(&latched),
                    Expr::bin(
                        BinaryOp::Shr,
                        Expr::id(&routed),
                        Expr::Concat(vec![Expr::lit(w - 4, 0), shift]),
                    ),
                )],
            });
            m.item(Item::Assign {
                lhs: Expr::Slice(Box::new(Expr::id("dout")), (o + 1) * w - 1, o * w),
                rhs: Expr::id(&latched),
            });
        }
        m
    }

    fn cost(&self) -> ResourceCost {
        let mux = mux_luts(self.width) * (self.inputs - 1).max(1);
        let shifter = adder_luts(self.width); // barrel shifter approximation
        ResourceCost::logic(0, (mux + shifter) * self.outputs, self.width * self.outputs)
    }

    fn describe(&self) -> String {
        format!(
            "connection box: {}x{} crossbar, {} bits, shifting latch",
            self.inputs, self.outputs, self.width
        )
    }
}

/// LRN unit: squares and accumulates a channel neighbourhood, looks up the
/// normalisation factor `(1 + α/n · s)^{-β}` in an Approx LUT and scales
/// the centre value.
#[derive(Debug, Clone, PartialEq)]
pub struct LrnUnit {
    /// Word width in bits.
    pub width: u32,
    /// Channels in the normalisation window.
    pub local_size: usize,
    /// The normalisation-factor table (filled by the compiler).
    pub factor_lut: ApproxLut,
}

impl LrnUnit {
    /// Builds the unit with a compiler-sampled factor table.
    pub fn new(width: u32, local_size: usize, alpha: f64, beta: f64, fmt: QFormat) -> Self {
        let factor_lut = ApproxLut::sample(
            |s| (1.0 + alpha / local_size as f64 * s).powf(-beta),
            0.0,
            fmt.max_value(),
            64,
            fmt,
            deepburning_fixed::Sampling::Uniform,
        )
        .expect("LRN factor table over a non-empty range");
        LrnUnit {
            width,
            local_size,
            factor_lut,
        }
    }

    /// Behavioural model: normalise `centre` against its `window`.
    pub fn simulate(&self, centre: Fx, window: &[Fx], fmt: QFormat) -> Fx {
        let mut acc = Accumulator::new(fmt);
        for v in window {
            acc.mac(*v, *v);
        }
        let s = acc.resolve(Rounding::Truncate);
        let factor = self.factor_lut.eval(s);
        centre * factor
    }
}

impl Block for LrnUnit {
    fn module_name(&self) -> String {
        format!("lrn_w{}_n{}", self.width, self.local_size)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let aw = (2 * w + 16).min(64);
        let frac = self.factor_lut.format().frac_bits();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("en", 1))
            .port(Port::input("din", w))
            .port(Port::input("centre", w))
            .port(Port::output("dout", w));
        // Square-and-accumulate the window stream: raw products carry 2F
        // fraction bits; alignment and saturation happen at readout, exactly
        // like the behavioural `Accumulator`.
        m.item(Item::Net(NetDecl::wire("sq", aw)));
        m.item(Item::Assign {
            lhs: Expr::id("sq"),
            rhs: Expr::bin(
                BinaryOp::Mul,
                sign_extend_expr("din", w, aw),
                sign_extend_expr("din", w, aw),
            ),
        });
        m.item(Item::Net(NetDecl::reg("energy_acc", aw)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![Stmt::NonBlocking(Expr::id("energy_acc"), Expr::lit(aw, 0))],
                else_body: vec![Stmt::If {
                    cond: Expr::id("en"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::id("energy_acc"),
                        Expr::bin(BinaryOp::Add, Expr::id("energy_acc"), Expr::id("sq")),
                    )],
                    else_body: vec![],
                }],
            }],
        });
        m.item(Item::Net(NetDecl::wire("energy_shifted", aw)));
        m.item(Item::Assign {
            lhs: Expr::id("energy_shifted"),
            rhs: Expr::bin(
                BinaryOp::Shr,
                Expr::id("energy_acc"),
                Expr::lit(32, u64::from(frac)),
            ),
        });
        m.item(Item::Net(NetDecl::wire("energy", w)));
        m.item(Item::Assign {
            lhs: Expr::id("energy"),
            rhs: saturate_expr("energy_shifted", aw, w),
        });
        // Normalisation factor from the embedded Approx LUT instance.
        m.item(Item::Net(NetDecl::wire("factor", w)));
        let lut = ApproxLutBlock::new(w, self.factor_lut.clone());
        m.item(Item::Instance {
            module: lut.module_name(),
            name: "u_factor_lut".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), Expr::id("clk")),
                ("din".into(), Expr::id("energy")),
                ("dout".into(), Expr::id("factor")),
            ],
        });
        // Scale the centre value: a fixed-point multiply with saturation,
        // mirroring `Fx::mul`.
        m.item(Item::Net(NetDecl::wire("scaled", aw)));
        m.item(Item::Assign {
            lhs: Expr::id("scaled"),
            rhs: Expr::bin(
                BinaryOp::Shr,
                Expr::bin(
                    BinaryOp::Mul,
                    sign_extend_expr("centre", w, aw),
                    sign_extend_expr("factor", w, aw),
                ),
                Expr::lit(32, u64::from(frac)),
            ),
        });
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: saturate_expr("scaled", aw, w),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        let lut_block = ApproxLutBlock::new(self.width, self.factor_lut.clone());
        ResourceCost::logic(
            dsps_per_multiplier(self.width) * 2,
            adder_luts(self.width),
            self.width,
        ) + lut_block.cost()
    }

    fn describe(&self) -> String {
        format!("LRN unit: window {}, {} bits", self.local_size, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_fixed::Sampling;
    use deepburning_verilog::{lint_design, Design};

    const F: QFormat = QFormat::Q8_8;

    fn sigmoid_lut() -> ApproxLut {
        ApproxLut::sample(
            |x| 1.0 / (1.0 + (-x).exp()),
            -8.0,
            8.0,
            64,
            F,
            Sampling::Uniform,
        )
        .expect("valid lut")
    }

    #[test]
    fn buffer_rtl_lints_clean() {
        let b = BufferBlock {
            width: 64,
            depth: 512,
        };
        assert!(lint_design(&Design::new(b.generate())).is_clean());
        assert_eq!(b.addr_width(), 9);
        assert_eq!(b.capacity_bits(), 64 * 512);
    }

    #[test]
    fn buffer_cost_counts_bram() {
        let b = BufferBlock {
            width: 32,
            depth: 1024,
        };
        assert_eq!(b.cost().bram_bits, 32 * 1024);
        assert_eq!(b.cost().dsp, 0);
    }

    #[test]
    fn approx_lut_block_lints_clean() {
        let b = ApproxLutBlock::new(16, sigmoid_lut());
        let report = lint_design(&Design::new(b.generate()));
        assert!(report.is_clean(), "{report}");
        assert_eq!(b.entries, 64);
    }

    #[test]
    fn approx_lut_block_simulates_through_image() {
        let b = ApproxLutBlock::new(16, sigmoid_lut());
        let y = b.simulate(Fx::from_f64(0.0, F));
        assert!((y.to_f64() - 0.5).abs() < 0.01);
    }

    #[test]
    fn approx_lut_rtl_is_bit_exact_with_eval() {
        use deepburning_verilog::Interpreter;
        for sampling in [Sampling::Uniform, Sampling::ErrorEqualizing] {
            let image =
                ApproxLut::sample(|x| x.tanh(), -4.0, 4.0, 32, F, sampling).expect("valid lut");
            let b = ApproxLutBlock::new(16, image);
            let mut sim =
                Interpreter::elaborate(&Design::new(b.generate()), &b.module_name()).expect("elab");
            let (keys, vals) = b.rom_words();
            sim.load_memory("key_rom", &keys).unwrap();
            sim.load_memory("val_rom", &vals).unwrap();
            // Probe every key, every midpoint, the rails, and a dense sweep.
            let mut probes: Vec<i64> = b.image.keys().iter().map(|k| k.raw()).collect();
            let mids: Vec<i64> = probes.windows(2).map(|p| (p[0] + p[1]) / 2).collect();
            probes.extend(mids);
            probes.extend([F.min_raw(), F.max_raw(), 0, 1, -1]);
            probes.extend((-1200..1200).step_by(7).map(|r| r * 23));
            for raw in probes {
                let raw = raw.clamp(F.min_raw(), F.max_raw());
                let x = Fx::from_raw(raw, F);
                sim.poke("din", raw as u64 & 0xFFFF).unwrap();
                let got = sim.read("dout").unwrap();
                let want = b.simulate(x).raw() as u64 & 0xFFFF;
                assert_eq!(
                    got, want,
                    "{sampling:?} lut({raw}): RTL {got:#06x} vs eval {want:#06x}"
                );
            }
        }
    }

    #[test]
    fn connection_box_lints_clean() {
        let c = ConnectionBox {
            width: 16,
            inputs: 4,
            outputs: 2,
        };
        let report = lint_design(&Design::new(c.generate()));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn connection_box_routes_and_shifts() {
        let c = ConnectionBox {
            width: 16,
            inputs: 4,
            outputs: 1,
        };
        let ins: Vec<Fx> = [1.0, 8.0, 3.0, 4.0]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        assert_eq!(c.simulate(&ins, 1, 0).to_f64(), 8.0);
        // Shifting latch: divide by 4.
        assert_eq!(c.simulate(&ins, 1, 2).to_f64(), 2.0);
    }

    #[test]
    fn lrn_unit_lints_clean_with_embedded_lut() {
        let u = LrnUnit::new(16, 5, 1e-4, 0.75, F);
        let lut_block = ApproxLutBlock::new(16, u.factor_lut.clone());
        let mut d = Design::new(u.generate());
        d.add_module(lut_block.generate());
        let report = lint_design(&d);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn lrn_suppression_direction() {
        let u = LrnUnit::new(16, 3, 1.0, 0.75, F);
        let quiet: Vec<Fx> = [0.0, 1.0, 0.0]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        let loud: Vec<Fx> = [5.0, 1.0, 5.0]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        let centre = Fx::from_f64(1.0, F);
        let yq = u.simulate(centre, &quiet, F).to_f64();
        let yl = u.simulate(centre, &loud, F).to_f64();
        assert!(yl < yq, "loud {yl} should be below quiet {yq}");
    }

    #[test]
    fn lrn_rtl_matches_behavioural_model() {
        use deepburning_verilog::Interpreter;
        let u = LrnUnit::new(16, 3, 1.0, 0.75, F);
        let lut_block = ApproxLutBlock::new(16, u.factor_lut.clone());
        let mut d = Design::new(u.generate());
        d.add_module(lut_block.generate());
        let mut sim = Interpreter::elaborate(&d, &u.module_name()).expect("elab");
        let (keys, vals) = lut_block.rom_words();
        sim.load_memory("u_factor_lut.key_rom", &keys).unwrap();
        sim.load_memory("u_factor_lut.val_rom", &vals).unwrap();
        let window = [2.5, -1.0, 0.75];
        let centre = Fx::from_f64(-1.0, F);
        sim.poke("rst", 1).unwrap();
        sim.clock().unwrap();
        sim.poke("rst", 0).unwrap();
        sim.poke("en", 1).unwrap();
        for v in window {
            sim.poke("din", Fx::from_f64(v, F).raw() as u64 & 0xFFFF)
                .unwrap();
            sim.clock().unwrap();
        }
        sim.poke("en", 0).unwrap();
        sim.poke("centre", centre.raw() as u64 & 0xFFFF).unwrap();
        let got = sim.read("dout").unwrap();
        let fx: Vec<Fx> = window.iter().map(|&v| Fx::from_f64(v, F)).collect();
        let want = u.simulate(centre, &fx, F).raw() as u64 & 0xFFFF;
        assert_eq!(got, want, "LRN RTL {got:#06x} vs model {want:#06x}");
    }

    #[test]
    fn costs_accumulate_sensibly() {
        let total = BufferBlock {
            width: 64,
            depth: 256,
        }
        .cost()
            + ApproxLutBlock::new(16, sigmoid_lut()).cost();
        assert!(total.bram_bits > 64 * 256);
        assert!(total.dsp >= 1);
    }
}
