//! Control-path building blocks: the Address Generation Unit template
//! (paper Fig. 6) and the FSM coordinator that sequences folded phases.

use crate::cost::{adder_luts, comparator_luts, mux_luts, ResourceCost};
use crate::Block;
use deepburning_verilog::{BinaryOp, Expr, Item, NetDecl, Port, Sensitivity, Stmt, VModule};

/// One memory access pattern of an AGU (the key fields of Fig. 6:
/// "starting address, footprint (size), x_length, y_length, stride,
/// off-set").
///
/// The generated address stream is, in order:
///
/// ```text
/// for y in 0..y_len:
///     for x in 0..x_len:
///         yield start + offset + y * y_stride + x * x_stride
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AguPattern {
    /// Base address of the region (words).
    pub start: u64,
    /// Additive offset applied to the whole pattern (fold displacement).
    pub offset: u64,
    /// Inner-loop trip count.
    pub x_len: u32,
    /// Outer-loop trip count.
    pub y_len: u32,
    /// Inner-loop address step (words).
    pub x_stride: u64,
    /// Outer-loop address step (words).
    pub y_stride: u64,
}

impl AguPattern {
    /// A dense 1-D burst of `len` words from `start`.
    pub fn linear(start: u64, len: u32) -> Self {
        AguPattern {
            start,
            offset: 0,
            x_len: len.max(1),
            y_len: 1,
            x_stride: 1,
            y_stride: 0,
        }
    }

    /// Total addresses generated ("footprint" in Fig. 6).
    pub fn footprint(&self) -> u64 {
        self.x_len as u64 * self.y_len as u64
    }

    /// The exact address stream this pattern produces — the behavioural
    /// model the simulator replays and the property tests check the RTL
    /// increments against.
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.y_len).flat_map(move |y| {
            (0..self.x_len).map(move |x| {
                self.start
                    .wrapping_add(self.offset)
                    .wrapping_add(y as u64 * self.y_stride)
                    .wrapping_add(x as u64 * self.x_stride)
            })
        })
    }

    /// The incremental step applied when the inner loop wraps, as the RTL
    /// adder computes it (two's complement in `addr_width` bits).
    pub fn wrap_step(&self, addr_width: u32) -> u64 {
        let step = self.y_stride as i128 - (self.x_len as i128 - 1) * self.x_stride as i128;
        let mask = if addr_width >= 128 {
            u128::MAX
        } else {
            (1u128 << addr_width) - 1
        };
        (step as u128 & mask) as u64
    }
}

/// The class of data an AGU serves (paper §3.3: "main AGU, data AGU and
/// weight AGU").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AguClass {
    /// Moves data between off-chip DRAM and on-chip buffers.
    Main,
    /// Feeds feature data from buffers into the datapath.
    Data,
    /// Feeds weight data from buffers into the datapath.
    Weight,
}

impl AguClass {
    /// Lower-case tag used in module names.
    pub fn tag(self) -> &'static str {
        match self {
            AguClass::Main => "main",
            AguClass::Data => "data",
            AguClass::Weight => "weight",
        }
    }
}

/// An AGU specialised ("reduced from the template") to a fixed set of
/// patterns. Triggered by a one-hot event, it streams the pattern's
/// addresses one per cycle and raises `done`.
#[derive(Debug, Clone, PartialEq)]
pub struct AguBlock {
    /// Which traffic class this AGU drives.
    pub class: AguClass,
    /// Address bus width.
    pub addr_width: u32,
    /// The supported patterns, indexed by trigger bit.
    pub patterns: Vec<AguPattern>,
}

impl AguBlock {
    /// Creates an AGU for a pattern set.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    pub fn new(class: AguClass, addr_width: u32, patterns: Vec<AguPattern>) -> Self {
        assert!(!patterns.is_empty(), "an AGU needs at least one pattern");
        AguBlock {
            class,
            addr_width,
            patterns,
        }
    }

    fn pattern_index_width(&self) -> u32 {
        32 - (self.patterns.len().max(2) as u32 - 1).leading_zeros()
    }
}

impl Block for AguBlock {
    fn module_name(&self) -> String {
        format!(
            "agu_{}_a{}_p{}",
            self.class.tag(),
            self.addr_width,
            self.patterns.len()
        )
    }

    fn generate(&self) -> VModule {
        let a = self.addr_width;
        let pn = self.patterns.len() as u32;
        let pw = self.pattern_index_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("trigger", pn))
            .port(Port::output("addr", a))
            .port(Port::output("valid", 1))
            .port(Port::output("done", 1));
        m.item(Item::Net(NetDecl::reg("pat", pw)));
        m.item(Item::Net(NetDecl::reg("x_cnt", 16)));
        m.item(Item::Net(NetDecl::reg("y_cnt", 16)));
        m.item(Item::Net(NetDecl::reg("addr_r", a)));
        m.item(Item::Net(NetDecl::reg("running", 1)));
        m.item(Item::Net(NetDecl::reg("done_r", 1)));

        // Trigger decode: priority chain, lowest bit wins.
        let mut launch: Vec<Stmt> = Vec::new();
        for (i, p) in self.patterns.iter().enumerate().rev() {
            let this = vec![
                Stmt::NonBlocking(Expr::id("pat"), Expr::lit(pw, i as u64)),
                Stmt::NonBlocking(Expr::id("x_cnt"), Expr::lit(16, 0)),
                Stmt::NonBlocking(Expr::id("y_cnt"), Expr::lit(16, 0)),
                Stmt::NonBlocking(
                    Expr::id("addr_r"),
                    Expr::lit(a, (p.start.wrapping_add(p.offset)) & mask(a)),
                ),
                Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 1)),
                Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 0)),
            ];
            if launch.is_empty() {
                launch = this;
            } else {
                launch = vec![Stmt::If {
                    cond: Expr::Index(
                        Box::new(Expr::id("trigger")),
                        Box::new(Expr::lit(32, i as u64)),
                    ),
                    then_body: this,
                    else_body: launch,
                }];
            }
        }

        // Per-pattern advance logic.
        let mut arms = Vec::new();
        for (i, p) in self.patterns.iter().enumerate() {
            let x_last = Expr::bin(
                BinaryOp::Eq,
                Expr::id("x_cnt"),
                Expr::lit(16, (p.x_len - 1) as u64),
            );
            let y_last = Expr::bin(
                BinaryOp::Eq,
                Expr::id("y_cnt"),
                Expr::lit(16, (p.y_len - 1) as u64),
            );
            let body = vec![Stmt::If {
                cond: x_last,
                then_body: vec![Stmt::If {
                    cond: y_last,
                    then_body: vec![
                        Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0)),
                        Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 1)),
                    ],
                    else_body: vec![
                        Stmt::NonBlocking(Expr::id("x_cnt"), Expr::lit(16, 0)),
                        Stmt::NonBlocking(
                            Expr::id("y_cnt"),
                            Expr::bin(BinaryOp::Add, Expr::id("y_cnt"), Expr::lit(16, 1)),
                        ),
                        Stmt::NonBlocking(
                            Expr::id("addr_r"),
                            Expr::bin(
                                BinaryOp::Add,
                                Expr::id("addr_r"),
                                Expr::lit(a, p.wrap_step(a)),
                            ),
                        ),
                    ],
                }],
                else_body: vec![
                    Stmt::NonBlocking(
                        Expr::id("x_cnt"),
                        Expr::bin(BinaryOp::Add, Expr::id("x_cnt"), Expr::lit(16, 1)),
                    ),
                    Stmt::NonBlocking(
                        Expr::id("addr_r"),
                        Expr::bin(
                            BinaryOp::Add,
                            Expr::id("addr_r"),
                            Expr::lit(a, p.x_stride & mask(a)),
                        ),
                    ),
                ],
            }];
            arms.push((Expr::lit(pw, i as u64), body));
        }

        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![
                    Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0)),
                    Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 0)),
                    Stmt::NonBlocking(Expr::id("pat"), Expr::lit(pw, 0)),
                    Stmt::NonBlocking(Expr::id("x_cnt"), Expr::lit(16, 0)),
                    Stmt::NonBlocking(Expr::id("y_cnt"), Expr::lit(16, 0)),
                    Stmt::NonBlocking(Expr::id("addr_r"), Expr::lit(a, 0)),
                ],
                else_body: vec![Stmt::If {
                    cond: Expr::Unary(
                        deepburning_verilog::UnaryOp::RedOr,
                        Box::new(Expr::id("trigger")),
                    ),
                    then_body: launch,
                    else_body: vec![Stmt::If {
                        cond: Expr::id("running"),
                        then_body: vec![Stmt::Case {
                            subject: Expr::id("pat"),
                            arms,
                            default: vec![Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0))],
                        }],
                        else_body: vec![],
                    }],
                }],
            }],
        });
        m.item(Item::Assign {
            lhs: Expr::id("addr"),
            rhs: Expr::id("addr_r"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("valid"),
            rhs: Expr::id("running"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("done"),
            rhs: Expr::id("done_r"),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        // Counters + adder + per-pattern constant mux.
        let lut = adder_luts(self.addr_width)
            + adder_luts(16) * 2
            + comparator_luts(16) * 2
            + mux_luts(self.addr_width) * self.patterns.len() as u32;
        let ff = self.addr_width + 16 * 2 + self.pattern_index_width() + 2;
        ResourceCost::logic(0, lut, ff)
    }

    fn describe(&self) -> String {
        format!(
            "{} AGU: {} patterns, {}-bit addresses",
            self.class.tag(),
            self.patterns.len(),
            self.addr_width
        )
    }
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The scheduling coordinator: walks the folded phases in order, firing the
/// AGU trigger of each phase on entry and advancing when the phase signals
/// completion (the "pre-determined phases marked by pre-defined events as
/// layer0-fold0").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coordinator {
    /// Number of phases in the schedule.
    pub phases: u32,
}

impl Coordinator {
    /// Phase counter width.
    pub fn phase_width(&self) -> u32 {
        32 - (self.phases.max(2) - 1).leading_zeros()
    }
}

impl Block for Coordinator {
    fn module_name(&self) -> String {
        format!("coordinator_p{}", self.phases)
    }

    fn generate(&self) -> VModule {
        let pw = self.phase_width();
        let last = (self.phases - 1) as u64;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("start", 1))
            .port(Port::input("phase_done", 1))
            .port(Port::output("phase", pw))
            .port(Port::output("busy", 1))
            .port(Port::output("fire", 1));
        m.item(Item::Net(NetDecl::reg("phase_r", pw)));
        m.item(Item::Net(NetDecl::reg("busy_r", 1)));
        m.item(Item::Net(NetDecl::reg("fire_r", 1)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![
                    Stmt::NonBlocking(Expr::id("phase_r"), Expr::lit(pw, 0)),
                    Stmt::NonBlocking(Expr::id("busy_r"), Expr::lit(1, 0)),
                    Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 0)),
                ],
                else_body: vec![
                    Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 0)),
                    Stmt::If {
                        cond: Expr::bin(
                            BinaryOp::LogAnd,
                            Expr::id("start"),
                            Expr::Unary(
                                deepburning_verilog::UnaryOp::Not,
                                Box::new(Expr::id("busy_r")),
                            ),
                        ),
                        then_body: vec![
                            Stmt::NonBlocking(Expr::id("phase_r"), Expr::lit(pw, 0)),
                            Stmt::NonBlocking(Expr::id("busy_r"), Expr::lit(1, 1)),
                            Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 1)),
                        ],
                        else_body: vec![Stmt::If {
                            cond: Expr::bin(
                                BinaryOp::LogAnd,
                                Expr::id("busy_r"),
                                Expr::id("phase_done"),
                            ),
                            then_body: vec![Stmt::If {
                                cond: Expr::bin(
                                    BinaryOp::Eq,
                                    Expr::id("phase_r"),
                                    Expr::lit(pw, last),
                                ),
                                then_body: vec![Stmt::NonBlocking(
                                    Expr::id("busy_r"),
                                    Expr::lit(1, 0),
                                )],
                                else_body: vec![
                                    Stmt::NonBlocking(
                                        Expr::id("phase_r"),
                                        Expr::bin(
                                            BinaryOp::Add,
                                            Expr::id("phase_r"),
                                            Expr::lit(pw, 1),
                                        ),
                                    ),
                                    Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 1)),
                                ],
                            }],
                            else_body: vec![],
                        }],
                    },
                ],
            }],
        });
        m.item(Item::Assign {
            lhs: Expr::id("phase"),
            rhs: Expr::id("phase_r"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("busy"),
            rhs: Expr::id("busy_r"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("fire"),
            rhs: Expr::id("fire_r"),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        let pw = self.phase_width();
        ResourceCost::logic(0, adder_luts(pw) + comparator_luts(pw) + 8, pw + 2)
    }

    fn describe(&self) -> String {
        format!("coordinator FSM: {} phases", self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{lint_design, Design};

    #[test]
    fn pattern_addresses_2d() {
        let p = AguPattern {
            start: 100,
            offset: 4,
            x_len: 3,
            y_len: 2,
            x_stride: 1,
            y_stride: 10,
        };
        let addrs: Vec<u64> = p.addresses().collect();
        assert_eq!(addrs, vec![104, 105, 106, 114, 115, 116]);
        assert_eq!(p.footprint(), 6);
    }

    #[test]
    fn linear_pattern() {
        let p = AguPattern::linear(50, 4);
        assert_eq!(p.addresses().collect::<Vec<_>>(), vec![50, 51, 52, 53]);
    }

    #[test]
    fn wrap_step_matches_address_delta() {
        let p = AguPattern {
            start: 0,
            offset: 0,
            x_len: 4,
            y_len: 3,
            x_stride: 2,
            y_stride: 16,
        };
        // Address before wrap: 6 (x=3); after wrap: 16. Delta = 10.
        assert_eq!(p.wrap_step(32), 10);
        let addrs: Vec<u64> = p.addresses().collect();
        assert_eq!(addrs[4] - addrs[3], 10);
    }

    #[test]
    fn wrap_step_negative_wraps_two_complement() {
        let p = AguPattern {
            start: 0,
            offset: 0,
            x_len: 8,
            y_len: 2,
            x_stride: 4,
            y_stride: 1,
        };
        // step = 1 - 28 = -27 -> two's complement in 16 bits
        assert_eq!(p.wrap_step(16), (1u64 << 16) - 27);
    }

    #[test]
    fn agu_rtl_lints_clean() {
        let agu = AguBlock::new(
            AguClass::Data,
            24,
            vec![
                AguPattern::linear(0, 64),
                AguPattern {
                    start: 4096,
                    offset: 0,
                    x_len: 12,
                    y_len: 12,
                    x_stride: 1,
                    y_stride: 57,
                },
            ],
        );
        let report = lint_design(&Design::new(agu.generate()));
        assert!(report.is_clean(), "{report}");
        assert_eq!(agu.module_name(), "agu_data_a24_p2");
    }

    #[test]
    fn agu_cost_grows_with_patterns() {
        let one = AguBlock::new(AguClass::Main, 32, vec![AguPattern::linear(0, 8)]).cost();
        let four = AguBlock::new(AguClass::Main, 32, vec![AguPattern::linear(0, 8); 4]).cost();
        assert!(four.lut > one.lut);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_agu_rejected() {
        let _ = AguBlock::new(AguClass::Main, 32, vec![]);
    }

    #[test]
    fn coordinator_rtl_lints_clean() {
        for phases in [1u32, 2, 7, 64] {
            let c = Coordinator { phases };
            let report = lint_design(&Design::new(c.generate()));
            assert!(report.is_clean(), "phases={phases}: {report}");
        }
    }

    #[test]
    fn coordinator_widths() {
        assert_eq!(Coordinator { phases: 1 }.phase_width(), 1);
        assert_eq!(Coordinator { phases: 2 }.phase_width(), 1);
        assert_eq!(Coordinator { phases: 3 }.phase_width(), 2);
        assert_eq!(Coordinator { phases: 64 }.phase_width(), 6);
    }

    #[test]
    fn agu_class_tags() {
        assert_eq!(AguClass::Main.tag(), "main");
        assert_eq!(AguClass::Data.tag(), "data");
        assert_eq!(AguClass::Weight.tag(), "weight");
    }
}
