//! Control-path building blocks: the Address Generation Unit template
//! (paper Fig. 6) and the FSM coordinator that sequences folded phases.

use crate::cost::{adder_luts, comparator_luts, mux_luts, ResourceCost};
use crate::Block;
use deepburning_verilog::{BinaryOp, Expr, Item, NetDecl, Port, Sensitivity, Stmt, VModule};

/// One memory access pattern of an AGU (the key fields of Fig. 6:
/// "starting address, footprint (size), x_length, y_length, stride,
/// off-set").
///
/// The generated address stream is, in order:
///
/// ```text
/// for y in 0..y_len:
///     for x in 0..x_len:
///         yield start + offset + y * y_stride + x * x_stride
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AguPattern {
    /// Base address of the region (words).
    pub start: u64,
    /// Additive offset applied to the whole pattern (fold displacement).
    pub offset: u64,
    /// Inner-loop trip count.
    pub x_len: u32,
    /// Outer-loop trip count.
    pub y_len: u32,
    /// Inner-loop address step (words).
    pub x_stride: u64,
    /// Outer-loop address step (words).
    pub y_stride: u64,
}

impl AguPattern {
    /// A dense 1-D burst of `len` words from `start`.
    pub fn linear(start: u64, len: u32) -> Self {
        AguPattern {
            start,
            offset: 0,
            x_len: len.max(1),
            y_len: 1,
            x_stride: 1,
            y_stride: 0,
        }
    }

    /// Total addresses generated ("footprint" in Fig. 6).
    pub fn footprint(&self) -> u64 {
        self.x_len as u64 * self.y_len as u64
    }

    /// The exact address stream this pattern produces — the behavioural
    /// model the simulator replays and the property tests check the RTL
    /// increments against.
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.y_len).flat_map(move |y| {
            (0..self.x_len).map(move |x| {
                self.start
                    .wrapping_add(self.offset)
                    .wrapping_add(y as u64 * self.y_stride)
                    .wrapping_add(x as u64 * self.x_stride)
            })
        })
    }

    /// The incremental step applied when the inner loop wraps, as the RTL
    /// adder computes it (two's complement in `addr_width` bits).
    pub fn wrap_step(&self, addr_width: u32) -> u64 {
        let step = self.y_stride as i128 - (self.x_len as i128 - 1) * self.x_stride as i128;
        let mask = if addr_width >= 128 {
            u128::MAX
        } else {
            (1u128 << addr_width) - 1
        };
        (step as u128 & mask) as u64
    }
}

/// The class of data an AGU serves (paper §3.3: "main AGU, data AGU and
/// weight AGU").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AguClass {
    /// Moves data between off-chip DRAM and on-chip buffers.
    Main,
    /// Feeds feature data from buffers into the datapath.
    Data,
    /// Feeds weight data from buffers into the datapath.
    Weight,
}

impl AguClass {
    /// Lower-case tag used in module names.
    pub fn tag(self) -> &'static str {
        match self {
            AguClass::Main => "main",
            AguClass::Data => "data",
            AguClass::Weight => "weight",
        }
    }
}

/// An AGU specialised ("reduced from the template") to a fixed set of
/// patterns. Triggered by a one-hot event, it streams the pattern's
/// addresses one per cycle and raises `done`.
///
/// The *main* AGU class additionally chains: a multi-bit trigger word is
/// latched into a pending set and the patterns launch back-to-back, lowest
/// bit first, with `done` raised only after the whole set drains. Each
/// launch adds the runtime `offset` input (the per-phase fold displacement
/// from the context buffer) to the pattern's base address; `pat_next`
/// exposes the index of the pattern about to launch so the environment can
/// present the matching offset, and `pat_cur` the one currently streaming.
/// A phase's full DRAM program (input fetch + weight fetch + write-back)
/// therefore runs off one trigger word — firing only the lowest bit was
/// the marshalling bug that left every other stream of the phase silent.
#[derive(Debug, Clone, PartialEq)]
pub struct AguBlock {
    /// Which traffic class this AGU drives.
    pub class: AguClass,
    /// Address bus width.
    pub addr_width: u32,
    /// The supported patterns, indexed by trigger bit.
    pub patterns: Vec<AguPattern>,
}

impl AguBlock {
    /// Creates an AGU for a pattern set.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    pub fn new(class: AguClass, addr_width: u32, patterns: Vec<AguPattern>) -> Self {
        assert!(!patterns.is_empty(), "an AGU needs at least one pattern");
        AguBlock {
            class,
            addr_width,
            patterns,
        }
    }

    /// Width of the pattern index (`pat_next`/`pat_cur` ports).
    pub fn pattern_index_width(&self) -> u32 {
        32 - (self.patterns.len().max(2) as u32 - 1).leading_zeros()
    }

    /// Width of the `x_cnt`/`y_cnt` trip counters: wide enough for the
    /// largest trip count in the pattern set, never narrower than 16.
    /// A fixed 16-bit counter silently truncated the `x_len-1` terminal
    /// comparison for bursts past 64Ki addresses (large FC weight
    /// fetches), ending them thousands of transactions early — the first
    /// marshalling bug the full-network RTL run surfaced.
    pub fn counter_width(&self) -> u32 {
        let max_cnt = self
            .patterns
            .iter()
            .map(|p| p.x_len.max(p.y_len).max(1) - 1)
            .max()
            .unwrap_or(0);
        (32 - max_cnt.max(1).leading_zeros()).max(16)
    }

    /// Whether this AGU chains multi-bit trigger words and applies the
    /// runtime `offset` input (main class only).
    pub fn is_chained(&self) -> bool {
        self.class == AguClass::Main
    }
}

impl Block for AguBlock {
    fn module_name(&self) -> String {
        format!(
            "agu_{}_a{}_p{}",
            self.class.tag(),
            self.addr_width,
            self.patterns.len()
        )
    }

    fn generate(&self) -> VModule {
        let a = self.addr_width;
        let pn = self.patterns.len() as u32;
        let pw = self.pattern_index_width();
        let cw = self.counter_width();
        let chained = self.is_chained();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("trigger", pn));
        if chained {
            m.port(Port::input("offset", a))
                .port(Port::output("pat_next", pw))
                .port(Port::output("pat_cur", pw));
        }
        m.port(Port::output("addr", a))
            .port(Port::output("valid", 1))
            .port(Port::output("done", 1));
        m.item(Item::Net(NetDecl::reg("pat", pw)));
        m.item(Item::Net(NetDecl::reg("x_cnt", cw)));
        m.item(Item::Net(NetDecl::reg("y_cnt", cw)));
        m.item(Item::Net(NetDecl::reg("addr_r", a)));
        m.item(Item::Net(NetDecl::reg("running", 1)));
        m.item(Item::Net(NetDecl::reg("done_r", 1)));
        if chained {
            m.item(Item::Net(NetDecl::reg("pending", pn)));
        }

        // Launch decode: priority chain over `src`, lowest bit wins. The
        // chained (main) AGU adds the runtime offset to the pattern base
        // and latches the remaining bits into `pending`.
        let launch_from = |src: &'static str| -> Vec<Stmt> {
            let mut launch: Vec<Stmt> = Vec::new();
            for (i, p) in self.patterns.iter().enumerate().rev() {
                let addr_init = if chained {
                    Expr::bin(
                        BinaryOp::Add,
                        Expr::lit(a, p.start & mask(a)),
                        Expr::id("offset"),
                    )
                } else {
                    Expr::lit(a, (p.start.wrapping_add(p.offset)) & mask(a))
                };
                let mut this = vec![
                    Stmt::NonBlocking(Expr::id("pat"), Expr::lit(pw, i as u64)),
                    Stmt::NonBlocking(Expr::id("x_cnt"), Expr::lit(cw, 0)),
                    Stmt::NonBlocking(Expr::id("y_cnt"), Expr::lit(cw, 0)),
                    Stmt::NonBlocking(Expr::id("addr_r"), addr_init),
                    Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 1)),
                    Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 0)),
                ];
                if chained {
                    this.push(Stmt::NonBlocking(
                        Expr::id("pending"),
                        Expr::bin(
                            BinaryOp::And,
                            Expr::id(src),
                            Expr::lit(pn, !(1u64 << i) & mask(pn)),
                        ),
                    ));
                }
                if launch.is_empty() {
                    launch = this;
                } else {
                    launch = vec![Stmt::If {
                        cond: Expr::Index(
                            Box::new(Expr::id(src)),
                            Box::new(Expr::lit(32, i as u64)),
                        ),
                        then_body: this,
                        else_body: launch,
                    }];
                }
            }
            launch
        };
        let launch = launch_from("trigger");

        // What happens when the running pattern's last address retires:
        // the plain AGU stops; the chained AGU launches the next pending
        // pattern back-to-back and only stops once the set drains.
        let finish: Vec<Stmt> = if chained {
            vec![Stmt::If {
                cond: Expr::Unary(
                    deepburning_verilog::UnaryOp::RedOr,
                    Box::new(Expr::id("pending")),
                ),
                then_body: launch_from("pending"),
                else_body: vec![
                    Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0)),
                    Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 1)),
                ],
            }]
        } else {
            vec![
                Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0)),
                Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 1)),
            ]
        };

        // Per-pattern advance logic.
        let mut arms = Vec::new();
        for (i, p) in self.patterns.iter().enumerate() {
            let x_last = Expr::bin(
                BinaryOp::Eq,
                Expr::id("x_cnt"),
                Expr::lit(cw, (p.x_len - 1) as u64),
            );
            let y_last = Expr::bin(
                BinaryOp::Eq,
                Expr::id("y_cnt"),
                Expr::lit(cw, (p.y_len - 1) as u64),
            );
            let body = vec![Stmt::If {
                cond: x_last,
                then_body: vec![Stmt::If {
                    cond: y_last,
                    then_body: finish.clone(),
                    else_body: vec![
                        Stmt::NonBlocking(Expr::id("x_cnt"), Expr::lit(cw, 0)),
                        Stmt::NonBlocking(
                            Expr::id("y_cnt"),
                            Expr::bin(BinaryOp::Add, Expr::id("y_cnt"), Expr::lit(cw, 1)),
                        ),
                        Stmt::NonBlocking(
                            Expr::id("addr_r"),
                            Expr::bin(
                                BinaryOp::Add,
                                Expr::id("addr_r"),
                                Expr::lit(a, p.wrap_step(a)),
                            ),
                        ),
                    ],
                }],
                else_body: vec![
                    Stmt::NonBlocking(
                        Expr::id("x_cnt"),
                        Expr::bin(BinaryOp::Add, Expr::id("x_cnt"), Expr::lit(cw, 1)),
                    ),
                    Stmt::NonBlocking(
                        Expr::id("addr_r"),
                        Expr::bin(
                            BinaryOp::Add,
                            Expr::id("addr_r"),
                            Expr::lit(a, p.x_stride & mask(a)),
                        ),
                    ),
                ],
            }];
            arms.push((Expr::lit(pw, i as u64), body));
        }

        let mut reset_body = vec![
            Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0)),
            Stmt::NonBlocking(Expr::id("done_r"), Expr::lit(1, 0)),
            Stmt::NonBlocking(Expr::id("pat"), Expr::lit(pw, 0)),
            Stmt::NonBlocking(Expr::id("x_cnt"), Expr::lit(cw, 0)),
            Stmt::NonBlocking(Expr::id("y_cnt"), Expr::lit(cw, 0)),
            Stmt::NonBlocking(Expr::id("addr_r"), Expr::lit(a, 0)),
        ];
        if chained {
            reset_body.push(Stmt::NonBlocking(Expr::id("pending"), Expr::lit(pn, 0)));
        }
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: reset_body,
                else_body: vec![Stmt::If {
                    cond: Expr::Unary(
                        deepburning_verilog::UnaryOp::RedOr,
                        Box::new(Expr::id("trigger")),
                    ),
                    then_body: launch,
                    else_body: vec![Stmt::If {
                        cond: Expr::id("running"),
                        then_body: vec![Stmt::Case {
                            subject: Expr::id("pat"),
                            arms,
                            default: vec![Stmt::NonBlocking(Expr::id("running"), Expr::lit(1, 0))],
                        }],
                        else_body: vec![],
                    }],
                }],
            }],
        });
        m.item(Item::Assign {
            lhs: Expr::id("addr"),
            rhs: Expr::id("addr_r"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("valid"),
            rhs: Expr::id("running"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("done"),
            rhs: Expr::id("done_r"),
        });
        if chained {
            // Priority encoder over a launch source, lowest bit first.
            let encode = |src: &'static str| -> Expr {
                let mut acc = Expr::lit(pw, (pn - 1) as u64);
                for i in (0..pn.saturating_sub(1)).rev() {
                    acc = Expr::Ternary(
                        Box::new(Expr::Index(
                            Box::new(Expr::id(src)),
                            Box::new(Expr::lit(32, i as u64)),
                        )),
                        Box::new(Expr::lit(pw, i as u64)),
                        Box::new(acc),
                    );
                }
                acc
            };
            m.item(Item::Assign {
                lhs: Expr::id("pat_next"),
                rhs: Expr::Ternary(
                    Box::new(Expr::Unary(
                        deepburning_verilog::UnaryOp::RedOr,
                        Box::new(Expr::id("trigger")),
                    )),
                    Box::new(encode("trigger")),
                    Box::new(encode("pending")),
                ),
            });
            m.item(Item::Assign {
                lhs: Expr::id("pat_cur"),
                rhs: Expr::id("pat"),
            });
        }
        m
    }

    fn cost(&self) -> ResourceCost {
        // Counters + adder + per-pattern constant mux.
        let mut lut = adder_luts(self.addr_width)
            + adder_luts(16) * 2
            + comparator_luts(16) * 2
            + mux_luts(self.addr_width) * self.patterns.len() as u32;
        let mut ff = self.addr_width + 16 * 2 + self.pattern_index_width() + 2;
        if self.is_chained() {
            // Pending-set register, offset adder, launch priority encoders.
            lut += adder_luts(self.addr_width) + mux_luts(self.pattern_index_width()) * 2;
            ff += self.patterns.len() as u32;
        }
        ResourceCost::logic(0, lut, ff)
    }

    fn describe(&self) -> String {
        format!(
            "{} AGU: {} patterns, {}-bit addresses",
            self.class.tag(),
            self.patterns.len(),
            self.addr_width
        )
    }
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The scheduling coordinator: walks the folded phases in order, firing the
/// AGU trigger of each phase on entry and advancing when the phase signals
/// completion (the "pre-determined phases marked by pre-defined events as
/// layer0-fold0").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coordinator {
    /// Number of phases in the schedule.
    pub phases: u32,
}

impl Coordinator {
    /// Phase counter width.
    pub fn phase_width(&self) -> u32 {
        32 - (self.phases.max(2) - 1).leading_zeros()
    }
}

impl Block for Coordinator {
    fn module_name(&self) -> String {
        format!("coordinator_p{}", self.phases)
    }

    fn generate(&self) -> VModule {
        let pw = self.phase_width();
        let last = (self.phases - 1) as u64;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("start", 1))
            .port(Port::input("phase_done", 1))
            .port(Port::output("phase", pw))
            .port(Port::output("busy", 1))
            .port(Port::output("fire", 1));
        m.item(Item::Net(NetDecl::reg("phase_r", pw)));
        m.item(Item::Net(NetDecl::reg("busy_r", 1)));
        m.item(Item::Net(NetDecl::reg("fire_r", 1)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![
                    Stmt::NonBlocking(Expr::id("phase_r"), Expr::lit(pw, 0)),
                    Stmt::NonBlocking(Expr::id("busy_r"), Expr::lit(1, 0)),
                    Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 0)),
                ],
                else_body: vec![
                    Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 0)),
                    Stmt::If {
                        cond: Expr::bin(
                            BinaryOp::LogAnd,
                            Expr::id("start"),
                            Expr::Unary(
                                deepburning_verilog::UnaryOp::Not,
                                Box::new(Expr::id("busy_r")),
                            ),
                        ),
                        then_body: vec![
                            Stmt::NonBlocking(Expr::id("phase_r"), Expr::lit(pw, 0)),
                            Stmt::NonBlocking(Expr::id("busy_r"), Expr::lit(1, 1)),
                            Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 1)),
                        ],
                        else_body: vec![Stmt::If {
                            cond: Expr::bin(
                                BinaryOp::LogAnd,
                                Expr::id("busy_r"),
                                Expr::id("phase_done"),
                            ),
                            then_body: vec![Stmt::If {
                                cond: Expr::bin(
                                    BinaryOp::Eq,
                                    Expr::id("phase_r"),
                                    Expr::lit(pw, last),
                                ),
                                then_body: vec![Stmt::NonBlocking(
                                    Expr::id("busy_r"),
                                    Expr::lit(1, 0),
                                )],
                                else_body: vec![
                                    Stmt::NonBlocking(
                                        Expr::id("phase_r"),
                                        Expr::bin(
                                            BinaryOp::Add,
                                            Expr::id("phase_r"),
                                            Expr::lit(pw, 1),
                                        ),
                                    ),
                                    Stmt::NonBlocking(Expr::id("fire_r"), Expr::lit(1, 1)),
                                ],
                            }],
                            else_body: vec![],
                        }],
                    },
                ],
            }],
        });
        m.item(Item::Assign {
            lhs: Expr::id("phase"),
            rhs: Expr::id("phase_r"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("busy"),
            rhs: Expr::id("busy_r"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("fire"),
            rhs: Expr::id("fire_r"),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        let pw = self.phase_width();
        ResourceCost::logic(0, adder_luts(pw) + comparator_luts(pw) + 8, pw + 2)
    }

    fn describe(&self) -> String {
        format!("coordinator FSM: {} phases", self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{lint_design, Design};

    #[test]
    fn pattern_addresses_2d() {
        let p = AguPattern {
            start: 100,
            offset: 4,
            x_len: 3,
            y_len: 2,
            x_stride: 1,
            y_stride: 10,
        };
        let addrs: Vec<u64> = p.addresses().collect();
        assert_eq!(addrs, vec![104, 105, 106, 114, 115, 116]);
        assert_eq!(p.footprint(), 6);
    }

    #[test]
    fn linear_pattern() {
        let p = AguPattern::linear(50, 4);
        assert_eq!(p.addresses().collect::<Vec<_>>(), vec![50, 51, 52, 53]);
    }

    #[test]
    fn wrap_step_matches_address_delta() {
        let p = AguPattern {
            start: 0,
            offset: 0,
            x_len: 4,
            y_len: 3,
            x_stride: 2,
            y_stride: 16,
        };
        // Address before wrap: 6 (x=3); after wrap: 16. Delta = 10.
        assert_eq!(p.wrap_step(32), 10);
        let addrs: Vec<u64> = p.addresses().collect();
        assert_eq!(addrs[4] - addrs[3], 10);
    }

    #[test]
    fn wrap_step_negative_wraps_two_complement() {
        let p = AguPattern {
            start: 0,
            offset: 0,
            x_len: 8,
            y_len: 2,
            x_stride: 4,
            y_stride: 1,
        };
        // step = 1 - 28 = -27 -> two's complement in 16 bits
        assert_eq!(p.wrap_step(16), (1u64 << 16) - 27);
    }

    #[test]
    fn agu_rtl_lints_clean() {
        let agu = AguBlock::new(
            AguClass::Data,
            24,
            vec![
                AguPattern::linear(0, 64),
                AguPattern {
                    start: 4096,
                    offset: 0,
                    x_len: 12,
                    y_len: 12,
                    x_stride: 1,
                    y_stride: 57,
                },
            ],
        );
        let report = lint_design(&Design::new(agu.generate()));
        assert!(report.is_clean(), "{report}");
        assert_eq!(agu.module_name(), "agu_data_a24_p2");
    }

    #[test]
    fn chained_main_agu_lints_clean() {
        let agu = AguBlock::new(
            AguClass::Main,
            32,
            vec![
                AguPattern::linear(0, 16),
                AguPattern::linear(256, 8),
                AguPattern::linear(512, 4),
            ],
        );
        assert!(agu.is_chained());
        let report = lint_design(&Design::new(agu.generate()));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn data_agu_is_not_chained() {
        let agu = AguBlock::new(AguClass::Data, 32, vec![AguPattern::linear(0, 4)]);
        assert!(!agu.is_chained());
    }

    #[test]
    fn agu_cost_grows_with_patterns() {
        let one = AguBlock::new(AguClass::Main, 32, vec![AguPattern::linear(0, 8)]).cost();
        let four = AguBlock::new(AguClass::Main, 32, vec![AguPattern::linear(0, 8); 4]).cost();
        assert!(four.lut > one.lut);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_agu_rejected() {
        let _ = AguBlock::new(AguClass::Main, 32, vec![]);
    }

    #[test]
    fn coordinator_rtl_lints_clean() {
        for phases in [1u32, 2, 7, 64] {
            let c = Coordinator { phases };
            let report = lint_design(&Design::new(c.generate()));
            assert!(report.is_clean(), "phases={phases}: {report}");
        }
    }

    #[test]
    fn coordinator_widths() {
        assert_eq!(Coordinator { phases: 1 }.phase_width(), 1);
        assert_eq!(Coordinator { phases: 2 }.phase_width(), 1);
        assert_eq!(Coordinator { phases: 3 }.phase_width(), 2);
        assert_eq!(Coordinator { phases: 64 }.phase_width(), 6);
    }

    #[test]
    fn agu_class_tags() {
        assert_eq!(AguClass::Main.tag(), "main");
        assert_eq!(AguClass::Data.tag(), "data");
        assert_eq!(AguClass::Weight.tag(), "weight");
    }

    #[test]
    fn counter_width_scales_with_trip_count() {
        let small = AguBlock::new(AguClass::Data, 32, vec![AguPattern::linear(0, 4)]);
        assert_eq!(small.counter_width(), 16);
        let big = AguBlock::new(AguClass::Weight, 32, vec![AguPattern::linear(0, 70_000)]);
        assert_eq!(big.counter_width(), 17);
        let tall = AguBlock::new(
            AguClass::Data,
            32,
            vec![AguPattern {
                start: 0,
                offset: 0,
                x_len: 2,
                y_len: 100_000,
                x_stride: 1,
                y_stride: 2,
            }],
        );
        assert_eq!(tall.counter_width(), 17);
    }

    /// The 64Ki boundary, exactly: a pattern of `2^16` trips still fits a
    /// 16-bit counter (the terminal comparison is against `x_len - 1 =
    /// 0xFFFF`), and one more trip is what forces the 17th bit. An
    /// off-by-one in either direction re-opens the truncated-burst bug.
    #[test]
    fn counter_width_is_exact_at_the_64ki_boundary() {
        let width_for = |trips: u32| {
            AguBlock::new(AguClass::Weight, 32, vec![AguPattern::linear(0, trips)]).counter_width()
        };
        assert_eq!(width_for((1 << 16) - 1), 16, "max count 0xFFFE fits");
        assert_eq!(width_for(1 << 16), 16, "max count 0xFFFF still fits");
        assert_eq!(
            width_for((1 << 16) + 1),
            17,
            "max count 0x10000 needs bit 16"
        );
        // The y counter shares the width derivation.
        let tall = AguBlock::new(
            AguClass::Data,
            32,
            vec![AguPattern {
                start: 0,
                offset: 0,
                x_len: 1,
                y_len: (1 << 16) + 1,
                x_stride: 1,
                y_stride: 1,
            }],
        );
        assert_eq!(tall.counter_width(), 17);
    }

    /// Regression for the first marshalling bug the full-network RTL run
    /// surfaced: with fixed 16-bit trip counters, a burst longer than
    /// 64Ki addresses (a large FC weight fetch) terminated early because
    /// the `x_cnt == x_len-1` literal truncated. The generated AGU must
    /// stream *every* address of an oversized pattern.
    #[test]
    fn oversized_burst_streams_to_completion() {
        use deepburning_verilog::SimEngine;
        let x_len: u32 = (1 << 16) + 50;
        let agu = AguBlock::new(AguClass::Weight, 32, vec![AguPattern::linear(0x100, x_len)]);
        let design = Design::new(agu.generate());
        let mut sim = SimEngine::Tree
            .elaborate(&design, &agu.module_name())
            .expect("elaborates");
        sim.poke("rst", 1).unwrap();
        sim.poke("trigger", 0).unwrap();
        sim.clock().unwrap();
        sim.poke("rst", 0).unwrap();
        sim.poke("trigger", 1).unwrap();
        sim.clock().unwrap();
        sim.poke("trigger", 0).unwrap();
        let mut streamed = 0u64;
        let mut last_addr = 0u64;
        for _ in 0..(u64::from(x_len) + 8) {
            if sim.read("valid").unwrap() == 1 {
                streamed += 1;
                last_addr = sim.read("addr").unwrap();
            }
            if sim.read("done").unwrap() == 1 {
                break;
            }
            sim.clock().unwrap();
        }
        assert_eq!(streamed, u64::from(x_len), "burst truncated");
        assert_eq!(last_addr, 0x100 + u64::from(x_len) - 1);
    }
}
