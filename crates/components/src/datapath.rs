//! Arithmetic building blocks: synergy neurons, accumulators, pooling,
//! activation, drop-out and the K-sorter classifier (paper Fig. 5).

use crate::cost::{adder_luts, comparator_luts, dsps_per_multiplier, mux_luts, ResourceCost};
use crate::Block;
use deepburning_fixed::{Accumulator, Fx, QFormat, Rounding};
use deepburning_model::PoolMethod;
use deepburning_verilog::{
    BinaryOp, Expr, Item, NetDecl, Port, Sensitivity, Stmt, UnaryOp, VModule,
};

fn slice(bus: &str, lane: u32, width: u32) -> Expr {
    Expr::Slice(
        Box::new(Expr::id(bus)),
        (lane + 1) * width - 1,
        lane * width,
    )
}

/// Sign-extends the `from`-bit signal `name` to `to` bits.
pub(crate) fn sign_extend_expr(name: &str, from: u32, to: u32) -> Expr {
    if to <= from {
        return Expr::id(name);
    }
    let ext = to - from;
    let ones = if ext >= 64 {
        u64::MAX
    } else {
        (1u64 << ext) - 1
    };
    let sign = Expr::Slice(Box::new(Expr::id(name)), from - 1, from - 1);
    Expr::Ternary(
        Box::new(sign),
        Box::new(Expr::Concat(vec![Expr::lit(ext, ones), Expr::id(name)])),
        Box::new(Expr::Concat(vec![Expr::lit(ext, 0), Expr::id(name)])),
    )
}

/// Saturates the `wide`-bit two's-complement signal `src` down to `narrow`
/// bits: the value passes through when the discarded high bits all equal the
/// narrow sign bit, and clamps to the most positive / most negative
/// `narrow`-bit pattern otherwise. This mirrors `QFormat::saturate` exactly.
pub(crate) fn saturate_expr(src: &str, wide: u32, narrow: u32) -> Expr {
    if wide <= narrow {
        return Expr::id(src);
    }
    let top = Expr::Slice(Box::new(Expr::id(src)), wide - 1, narrow - 1);
    let in_range = Expr::bin(
        BinaryOp::Or,
        Expr::Unary(UnaryOp::RedAnd, Box::new(top.clone())),
        Expr::Unary(
            UnaryOp::Not,
            Box::new(Expr::Unary(UnaryOp::RedOr, Box::new(top))),
        ),
    );
    let sign = Expr::Slice(Box::new(Expr::id(src)), wide - 1, wide - 1);
    let min_pattern = 1u64 << (narrow - 1);
    Expr::Ternary(
        Box::new(in_range),
        Box::new(Expr::Slice(Box::new(Expr::id(src)), narrow - 1, 0)),
        Box::new(Expr::Ternary(
            Box::new(sign),
            Box::new(Expr::lit(narrow, min_pattern)),
            Box::new(Expr::lit(narrow, min_pattern - 1)),
        )),
    )
}

/// A bank of synergy neurons: `lanes` parallel multiply units feeding an
/// adder tree and a saturating accumulator register.
///
/// One beat consumes `lanes` feature words and `lanes` weight words and adds
/// their dot product to the running sum. The paper's convolution and FC
/// layers both map onto this block ("Full connection layer: synergy-neurons
/// + accumulators").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynergyNeuron {
    /// Datapath word width in bits.
    pub width: u32,
    /// Fraction bits of the fixed-point format (the multiplier selects the
    /// product field `[width+frac-1 : frac]`).
    pub frac_bits: u32,
    /// Parallel multiplier lanes.
    pub lanes: u32,
}

impl SynergyNeuron {
    /// Creates a neuron bank with the default balanced format
    /// (`frac_bits = width / 2`, i.e. Q7.8 at 16 bits).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `width == 0`.
    pub fn new(width: u32, lanes: u32) -> Self {
        assert!(width > 0 && lanes > 0, "degenerate neuron configuration");
        SynergyNeuron {
            width,
            frac_bits: width / 2,
            lanes,
        }
    }

    /// Returns a copy with an explicit fraction width.
    pub fn with_frac(mut self, frac_bits: u32) -> Self {
        assert!(frac_bits < self.width, "fraction must leave a sign bit");
        self.frac_bits = frac_bits;
        self
    }

    /// Width of the wide accumulator register: raw products carry `2 * width`
    /// bits, plus headroom for summation, capped at the interpreter's 64-bit
    /// signal limit. For `width <= 24` this leaves at least 16 bits of
    /// headroom, so the register tracks the behavioural [`Accumulator`]
    /// exactly over any realistic dot-product length.
    pub fn acc_width(&self) -> u32 {
        (2 * self.width + 16).min(64)
    }

    /// Fixed-point behavioural model of one beat sequence: the dot product
    /// of `features` and `weights` as the hardware computes it.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or formats disagree.
    pub fn simulate(&self, features: &[Fx], weights: &[Fx], fmt: QFormat) -> Fx {
        assert_eq!(features.len(), weights.len(), "operand length mismatch");
        let mut acc = Accumulator::new(fmt);
        for (f, w) in features.iter().zip(weights) {
            acc.mac(*f, *w);
        }
        acc.resolve(Rounding::Truncate)
    }
}

impl Block for SynergyNeuron {
    fn module_name(&self) -> String {
        format!(
            "synergy_neuron_w{}_f{}_l{}",
            self.width, self.frac_bits, self.lanes
        )
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let aw = self.acc_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("en", 1))
            .port(Port::input("clear", 1))
            .port(Port::input("din", w * self.lanes))
            .port(Port::input("weight", w * self.lanes))
            .port(Port::output("sum_out", w));
        // Per-lane fixed-point products: sign-extend both operands to the
        // accumulator width and multiply. The raw product keeps all 2F
        // fraction bits — alignment and saturation happen once, at readout,
        // exactly as the behavioural `Accumulator` resolves.
        for lane in 0..self.lanes {
            let (fl, wl) = (format!("lane_f{lane}"), format!("lane_w{lane}"));
            m.item(Item::Net(NetDecl::wire(&fl, w)));
            m.item(Item::Assign {
                lhs: Expr::id(&fl),
                rhs: slice("din", lane, w),
            });
            m.item(Item::Net(NetDecl::wire(&wl, w)));
            m.item(Item::Assign {
                lhs: Expr::id(&wl),
                rhs: slice("weight", lane, w),
            });
            m.item(Item::Net(NetDecl::wire(format!("prod{lane}"), aw)));
            m.item(Item::Assign {
                lhs: Expr::id(format!("prod{lane}")),
                rhs: Expr::bin(
                    BinaryOp::Mul,
                    sign_extend_expr(&fl, w, aw),
                    sign_extend_expr(&wl, w, aw),
                ),
            });
        }
        // Linear adder chain (synthesis retimes it into a tree).
        let mut sum = Expr::id("prod0");
        for lane in 1..self.lanes {
            sum = Expr::bin(BinaryOp::Add, sum, Expr::id(format!("prod{lane}")));
        }
        m.item(Item::Net(NetDecl::wire("tree_sum", aw)));
        m.item(Item::Assign {
            lhs: Expr::id("tree_sum"),
            rhs: sum,
        });
        m.item(Item::Net(NetDecl::reg("acc", aw)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::bin(BinaryOp::LogOr, Expr::id("rst"), Expr::id("clear")),
                then_body: vec![Stmt::NonBlocking(Expr::id("acc"), Expr::lit(aw, 0))],
                else_body: vec![Stmt::If {
                    cond: Expr::id("en"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::id("acc"),
                        Expr::bin(BinaryOp::Add, Expr::id("acc"), Expr::id("tree_sum")),
                    )],
                    else_body: vec![],
                }],
            }],
        });
        // Readout: arithmetic-shift the fraction bits away, then saturate to
        // the datapath width — bit-for-bit `Accumulator::resolve(Truncate)`.
        m.item(Item::Net(NetDecl::wire("acc_shifted", aw)));
        m.item(Item::Assign {
            lhs: Expr::id("acc_shifted"),
            rhs: Expr::bin(
                BinaryOp::Shr,
                Expr::id("acc"),
                Expr::lit(32, u64::from(self.frac_bits)),
            ),
        });
        m.item(Item::Assign {
            lhs: Expr::id("sum_out"),
            rhs: saturate_expr("acc_shifted", aw, w),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        let mul_dsp = dsps_per_multiplier(self.width) * self.lanes;
        // Adder tree: lanes-1 adders; accumulator: one adder + register;
        // saturation: one mux stage.
        let lut = adder_luts(self.width) * self.lanes + 2 * mux_luts(self.width);
        let ff = self.acc_width();
        ResourceCost::logic(mul_dsp, lut, ff)
    }

    fn describe(&self) -> String {
        format!(
            "synergy neuron bank: {} lanes x {} bits",
            self.lanes, self.width
        )
    }
}

/// A standalone wrapping accumulator used to merge partial sums across
/// folds and to chain convolution partial products.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccumulatorBlock {
    /// Word width in bits.
    pub width: u32,
}

impl Block for AccumulatorBlock {
    fn module_name(&self) -> String {
        format!("accumulator_w{}", self.width)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("en", 1))
            .port(Port::input("din", w))
            .port(Port::output("acc_out", w));
        m.item(Item::Net(NetDecl::reg("acc", w)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![Stmt::NonBlocking(Expr::id("acc"), Expr::lit(w, 0))],
                else_body: vec![Stmt::If {
                    cond: Expr::id("en"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::id("acc"),
                        Expr::bin(BinaryOp::Add, Expr::id("acc"), Expr::id("din")),
                    )],
                    else_body: vec![],
                }],
            }],
        });
        m.item(Item::Assign {
            lhs: Expr::id("acc_out"),
            rhs: Expr::id("acc"),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        ResourceCost::logic(0, adder_luts(self.width), self.width)
    }

    fn describe(&self) -> String {
        format!("accumulator: {} bits", self.width)
    }
}

/// Streaming pooling unit: max keeps a comparator-selected best value,
/// average accumulates (division happens in the connection box's shifting
/// latch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolingUnit {
    /// Word width in bits.
    pub width: u32,
    /// Reduction method.
    pub method: PoolMethod,
}

impl PoolingUnit {
    /// Width of the average-pool sum register: the datapath width plus
    /// summation headroom, capped at the interpreter's 64-bit signal limit.
    pub fn acc_width(&self) -> u32 {
        (self.width + 16).min(64)
    }

    /// Behavioural model: reduce a window of values.
    ///
    /// Average pooling divides by the window size the way the generated
    /// datapath does: a power-of-two window uses the connection box's
    /// shifting latch, anything else multiplies by the quantised reciprocal
    /// in a neuron lane — identical to the functional simulator's `pool_fx`.
    pub fn simulate(&self, window: &[Fx], fmt: QFormat) -> Fx {
        match self.method {
            PoolMethod::Max => window
                .iter()
                .copied()
                .fold(Fx::from_raw(fmt.min_raw(), fmt), Fx::max),
            PoolMethod::Average => {
                let mut acc = Accumulator::new(fmt);
                for v in window {
                    acc.add(*v);
                }
                let sum = acc.resolve(Rounding::Truncate);
                let n = window.len().max(1);
                if n.is_power_of_two() {
                    sum.shift_right(n.trailing_zeros())
                } else {
                    sum * Fx::from_f64(1.0 / n as f64, fmt)
                }
            }
        }
    }
}

impl Block for PoolingUnit {
    fn module_name(&self) -> String {
        let tag = match self.method {
            PoolMethod::Max => "max",
            PoolMethod::Average => "avg",
        };
        format!("pooling_{tag}_w{}", self.width)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("en", 1))
            .port(Port::input("clear", 1))
            .port(Port::input("din", w))
            .port(Port::output("dout", w));
        match self.method {
            PoolMethod::Max => {
                // Signed running max: reset to the most negative raw pattern
                // so negative pre-activation windows (pooling before ReLU)
                // reduce exactly like the behavioural `Fx::max` fold.
                m.item(Item::Net(NetDecl::reg("agg", w)));
                m.item(Item::Always {
                    sensitivity: Sensitivity::PosEdge("clk".into()),
                    body: vec![Stmt::If {
                        cond: Expr::bin(BinaryOp::LogOr, Expr::id("rst"), Expr::id("clear")),
                        then_body: vec![Stmt::NonBlocking(
                            Expr::id("agg"),
                            Expr::lit(w, 1u64 << (w - 1)),
                        )],
                        else_body: vec![Stmt::If {
                            cond: Expr::id("en"),
                            then_body: vec![Stmt::If {
                                cond: Expr::bin(BinaryOp::Slt, Expr::id("agg"), Expr::id("din")),
                                then_body: vec![Stmt::NonBlocking(
                                    Expr::id("agg"),
                                    Expr::id("din"),
                                )],
                                else_body: vec![],
                            }],
                            else_body: vec![],
                        }],
                    }],
                });
                m.item(Item::Assign {
                    lhs: Expr::id("dout"),
                    rhs: Expr::id("agg"),
                });
            }
            PoolMethod::Average => {
                // Wide running sum with a saturating readout, mirroring the
                // behavioural `Accumulator::add` + `resolve` pair. Division
                // happens downstream (shifting latch or reciprocal lane).
                let aw = self.acc_width();
                m.item(Item::Net(NetDecl::reg("agg", aw)));
                m.item(Item::Always {
                    sensitivity: Sensitivity::PosEdge("clk".into()),
                    body: vec![Stmt::If {
                        cond: Expr::bin(BinaryOp::LogOr, Expr::id("rst"), Expr::id("clear")),
                        then_body: vec![Stmt::NonBlocking(Expr::id("agg"), Expr::lit(aw, 0))],
                        else_body: vec![Stmt::If {
                            cond: Expr::id("en"),
                            then_body: vec![Stmt::NonBlocking(
                                Expr::id("agg"),
                                Expr::bin(
                                    BinaryOp::Add,
                                    Expr::id("agg"),
                                    sign_extend_expr("din", w, aw),
                                ),
                            )],
                            else_body: vec![],
                        }],
                    }],
                });
                m.item(Item::Assign {
                    lhs: Expr::id("dout"),
                    rhs: saturate_expr("agg", aw, w),
                });
            }
        }
        m
    }

    fn cost(&self) -> ResourceCost {
        let lut = match self.method {
            PoolMethod::Max => comparator_luts(self.width) + mux_luts(self.width),
            PoolMethod::Average => adder_luts(self.width) + mux_luts(self.width),
        };
        let ff = match self.method {
            PoolMethod::Max => self.width,
            PoolMethod::Average => self.acc_width(),
        };
        ResourceCost::logic(0, lut, ff)
    }

    fn describe(&self) -> String {
        format!("pooling unit ({}): {} bits", self.method, self.width)
    }
}

/// Combinational ReLU: a sign-bit mux. (Sigmoid/tanh route through the
/// Approx LUT block instead.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationUnit {
    /// Word width in bits.
    pub width: u32,
}

impl ActivationUnit {
    /// Behavioural model.
    pub fn simulate(&self, x: Fx) -> Fx {
        x.max(Fx::zero(x.format()))
    }
}

impl Block for ActivationUnit {
    fn module_name(&self) -> String {
        format!("relu_w{}", self.width)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("din", w)).port(Port::output("dout", w));
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::Ternary(
                Box::new(Expr::Index(
                    Box::new(Expr::id("din")),
                    Box::new(Expr::lit(32, (w - 1) as u64)),
                )),
                Box::new(Expr::lit(w, 0)),
                Box::new(Expr::id("din")),
            ),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        ResourceCost::logic(0, mux_luts(self.width), 0)
    }

    fn describe(&self) -> String {
        format!("ReLU unit: {} bits", self.width)
    }
}

/// Drop-out inserter: gates lanes off during training-mode propagation.
/// At inference it is configured transparent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropOutUnit {
    /// Word width in bits.
    pub width: u32,
}

impl Block for DropOutUnit {
    fn module_name(&self) -> String {
        format!("dropout_w{}", self.width)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("din", w))
            .port(Port::input("mask", 1))
            .port(Port::output("dout", w));
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::Ternary(
                Box::new(Expr::id("mask")),
                Box::new(Expr::lit(w, 0)),
                Box::new(Expr::id("din")),
            ),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        ResourceCost::logic(0, mux_luts(self.width), 0)
    }

    fn describe(&self) -> String {
        format!("drop-out inserter: {} bits", self.width)
    }
}

/// K-sorter / classifier block: an argmax comparator chain over `inputs`
/// values (implemented per Beigel & Gill's k-sorter construction in the
/// paper's library; we emit the single-pass selection network and repeat it
/// `k` times in the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSorter {
    /// Word width of the compared values.
    pub width: u32,
    /// Number of parallel inputs.
    pub inputs: u32,
}

impl KSorter {
    /// Index width of the result.
    pub fn index_width(&self) -> u32 {
        32 - (self.inputs.max(2) - 1).leading_zeros()
    }

    /// Behavioural model: argmax.
    pub fn simulate(&self, values: &[Fx]) -> usize {
        let mut best = 0usize;
        for (i, v) in values.iter().enumerate() {
            if v.raw() > values[best].raw() {
                best = i;
            }
        }
        best
    }

    /// Behavioural model of the scheduled top-k: the coordinator replays
    /// the selection network `k` times, masking the previous winner.
    pub fn simulate_topk(&self, values: &[Fx], k: usize) -> Vec<usize> {
        let mut masked: Vec<(usize, i64)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.raw()))
            .collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k.min(values.len()) {
            // Strict compare: ties keep the earliest index, exactly like the
            // comparator chain (and the functional classifier's stable sort).
            let mut pos = 0usize;
            for (i, (_, raw)) in masked.iter().enumerate() {
                if *raw > masked[pos].1 {
                    pos = i;
                }
            }
            out.push(masked[pos].0);
            masked.remove(pos);
        }
        out
    }
}

impl Block for KSorter {
    fn module_name(&self) -> String {
        format!("ksorter_w{}_n{}", self.width, self.inputs)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let iw = self.index_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("din", w * self.inputs))
            .port(Port::output("idx_out", iw))
            .port(Port::output("val_out", w));
        m.item(Item::Net(NetDecl::wire("best_val0", w)));
        m.item(Item::Net(NetDecl::wire("best_idx0", iw)));
        m.item(Item::Assign {
            lhs: Expr::id("best_val0"),
            rhs: slice("din", 0, w),
        });
        m.item(Item::Assign {
            lhs: Expr::id("best_idx0"),
            rhs: Expr::lit(iw, 0),
        });
        for i in 1..self.inputs {
            let prev_v = format!("best_val{}", i - 1);
            let prev_i = format!("best_idx{}", i - 1);
            let cur_v = format!("best_val{i}");
            let cur_i = format!("best_idx{i}");
            m.item(Item::Net(NetDecl::wire(&cur_v, w)));
            m.item(Item::Net(NetDecl::wire(&cur_i, iw)));
            let wins = Expr::bin(BinaryOp::Slt, Expr::id(&prev_v), slice("din", i, w));
            m.item(Item::Assign {
                lhs: Expr::id(&cur_v),
                rhs: Expr::Ternary(
                    Box::new(wins.clone()),
                    Box::new(slice("din", i, w)),
                    Box::new(Expr::id(&prev_v)),
                ),
            });
            m.item(Item::Assign {
                lhs: Expr::id(&cur_i),
                rhs: Expr::Ternary(
                    Box::new(wins),
                    Box::new(Expr::lit(iw, i as u64)),
                    Box::new(Expr::id(&prev_i)),
                ),
            });
        }
        let last = self.inputs - 1;
        m.item(Item::Assign {
            lhs: Expr::id("idx_out"),
            rhs: Expr::id(format!("best_idx{last}")),
        });
        m.item(Item::Assign {
            lhs: Expr::id("val_out"),
            rhs: Expr::id(format!("best_val{last}")),
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        let per_stage =
            comparator_luts(self.width) + mux_luts(self.width) + mux_luts(self.index_width());
        ResourceCost::logic(0, per_stage * (self.inputs - 1), 0)
    }

    fn describe(&self) -> String {
        format!("K-sorter: {} inputs x {} bits", self.inputs, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{lint_design, Design, Interpreter};

    const F: QFormat = QFormat::Q8_8;

    fn raw16(v: f64) -> u64 {
        Fx::from_f64(v, F).raw() as u64 & 0xFFFF
    }

    #[test]
    fn neuron_rtl_lints_clean() {
        for lanes in [1u32, 2, 8, 32] {
            let n = SynergyNeuron::new(16, lanes);
            let report = lint_design(&Design::new(n.generate()));
            assert!(report.is_clean(), "lanes={lanes}: {report}");
        }
    }

    #[test]
    fn neuron_simulation_matches_dot_product() {
        let n = SynergyNeuron::new(16, 4);
        let f: Vec<Fx> = [1.0, -2.0, 0.5, 3.0]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        let w: Vec<Fx> = [0.5, 0.25, -1.0, 2.0]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        let out = n.simulate(&f, &w, F);
        assert!((out.to_f64() - (0.5 - 0.5 - 0.5 + 6.0)).abs() < 0.01);
    }

    #[test]
    fn neuron_rtl_is_bit_exact_with_the_accumulator() {
        // Mixed-sign values whose running sum leaves the 16-bit window
        // mid-stream: the wide accumulator must carry the excursion and the
        // readout must land exactly on `Accumulator::resolve(Truncate)`.
        let n = SynergyNeuron::new(16, 2);
        let beats: &[([f64; 2], [f64; 2])] = &[
            ([100.0, -50.0], [100.0, 100.0]),
            ([-127.0, 3.75], [100.0, -2.5]),
            ([0.004, 90.0], [0.004, -90.0]),
        ];
        let mut sim =
            Interpreter::elaborate(&Design::new(n.generate()), &n.module_name()).expect("elab");
        sim.poke("rst", 1).unwrap();
        sim.clock().unwrap();
        sim.poke("rst", 0).unwrap();
        sim.poke("en", 1).unwrap();
        let mut flat_f = Vec::new();
        let mut flat_w = Vec::new();
        for (fb, wb) in beats {
            sim.poke("din", raw16(fb[0]) | (raw16(fb[1]) << 16))
                .unwrap();
            sim.poke("weight", raw16(wb[0]) | (raw16(wb[1]) << 16))
                .unwrap();
            sim.clock().unwrap();
            flat_f.extend(fb.iter().map(|&v| Fx::from_f64(v, F)));
            flat_w.extend(wb.iter().map(|&v| Fx::from_f64(v, F)));
        }
        let got = sim.read("sum_out").unwrap();
        let want = n.simulate(&flat_f, &flat_w, F).raw() as u64 & 0xFFFF;
        assert_eq!(got, want, "RTL {got:#06x} vs model {want:#06x}");
    }

    #[test]
    fn pooling_max_rtl_handles_negative_windows() {
        // Pooling ahead of ReLU sees negative values; the comparator must be
        // signed and the reset value the most negative pattern, not zero.
        let p = PoolingUnit {
            width: 16,
            method: PoolMethod::Max,
        };
        let window = [-3.0, -1.5, -2.0];
        let mut sim =
            Interpreter::elaborate(&Design::new(p.generate()), &p.module_name()).expect("elab");
        sim.poke("rst", 1).unwrap();
        sim.clock().unwrap();
        sim.poke("rst", 0).unwrap();
        sim.poke("en", 1).unwrap();
        for v in window {
            sim.poke("din", raw16(v)).unwrap();
            sim.clock().unwrap();
        }
        let got = sim.read("dout").unwrap();
        let fx: Vec<Fx> = window.iter().map(|&v| Fx::from_f64(v, F)).collect();
        let want = p.simulate(&fx, F).raw() as u64 & 0xFFFF;
        assert_eq!(
            got, want,
            "max of negatives: RTL {got:#06x} vs model {want:#06x}"
        );
        assert_eq!(want, raw16(-1.5));
    }

    #[test]
    fn pooling_avg_rtl_sum_saturates_like_the_model() {
        let p = PoolingUnit {
            width: 16,
            method: PoolMethod::Average,
        };
        // 16 x 120.0 overflows the 16-bit sum; the model saturates at
        // resolve, so the RTL readout must clamp to max_raw.
        let mut sim =
            Interpreter::elaborate(&Design::new(p.generate()), &p.module_name()).expect("elab");
        sim.poke("rst", 1).unwrap();
        sim.clock().unwrap();
        sim.poke("rst", 0).unwrap();
        sim.poke("en", 1).unwrap();
        for _ in 0..16 {
            sim.poke("din", raw16(120.0)).unwrap();
            sim.clock().unwrap();
        }
        let got = sim.read("dout").unwrap();
        assert_eq!(got, F.max_raw() as u64 & 0xFFFF);
    }

    #[test]
    fn ksorter_rtl_handles_negative_scores() {
        let k = KSorter {
            width: 16,
            inputs: 3,
        };
        let vals = [-0.5, -0.25, -1.0];
        let mut sim =
            Interpreter::elaborate(&Design::new(k.generate()), &k.module_name()).expect("elab");
        let bus = raw16(vals[0]) | (raw16(vals[1]) << 16) | (raw16(vals[2]) << 32);
        sim.poke("din", bus).unwrap();
        let fx: Vec<Fx> = vals.iter().map(|&v| Fx::from_f64(v, F)).collect();
        assert_eq!(sim.read("idx_out").unwrap(), k.simulate(&fx) as u64);
        assert_eq!(k.simulate(&fx), 1);
    }

    #[test]
    fn neuron_cost_scales_with_lanes() {
        let small = SynergyNeuron::new(16, 4).cost();
        let big = SynergyNeuron::new(16, 8).cost();
        assert_eq!(big.dsp, small.dsp * 2);
        assert!(big.lut > small.lut);
    }

    #[test]
    fn wide_neuron_uses_cascaded_dsps() {
        let n = SynergyNeuron::new(24, 2);
        assert_eq!(n.cost().dsp, 4);
    }

    #[test]
    fn accumulator_rtl_lints_clean() {
        let a = AccumulatorBlock { width: 32 };
        assert!(lint_design(&Design::new(a.generate())).is_clean());
        assert_eq!(a.module_name(), "accumulator_w32");
    }

    #[test]
    fn pooling_units_lint_clean() {
        for method in [PoolMethod::Max, PoolMethod::Average] {
            let p = PoolingUnit { width: 16, method };
            let report = lint_design(&Design::new(p.generate()));
            assert!(report.is_clean(), "{method}: {report}");
        }
    }

    #[test]
    fn pooling_simulation_max_and_avg() {
        let vals: Vec<Fx> = [1.0, 4.0, 2.0, 3.0]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        let max = PoolingUnit {
            width: 16,
            method: PoolMethod::Max,
        };
        assert_eq!(max.simulate(&vals, F).to_f64(), 4.0);
        let avg = PoolingUnit {
            width: 16,
            method: PoolMethod::Average,
        };
        assert_eq!(avg.simulate(&vals, F).to_f64(), 2.5);
    }

    #[test]
    fn relu_unit_behaviour_and_rtl() {
        let r = ActivationUnit { width: 16 };
        assert!(lint_design(&Design::new(r.generate())).is_clean());
        assert_eq!(r.simulate(Fx::from_f64(-2.0, F)).to_f64(), 0.0);
        assert_eq!(r.simulate(Fx::from_f64(2.0, F)).to_f64(), 2.0);
    }

    #[test]
    fn dropout_unit_lints_clean() {
        let d = DropOutUnit { width: 16 };
        assert!(lint_design(&Design::new(d.generate())).is_clean());
    }

    #[test]
    fn ksorter_argmax_and_rtl() {
        let k = KSorter {
            width: 16,
            inputs: 10,
        };
        assert_eq!(k.index_width(), 4);
        assert!(lint_design(&Design::new(k.generate())).is_clean());
        let vals: Vec<Fx> = [0.1, 0.9, 0.3, 0.95, 0.2]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        assert_eq!(k.simulate(&vals), 3);
    }

    #[test]
    fn ksorter_topk_matches_sorting() {
        let k = KSorter {
            width: 16,
            inputs: 8,
        };
        let vals: Vec<Fx> = [0.3, 0.9, 0.1, 0.7, 0.5]
            .iter()
            .map(|&v| Fx::from_f64(v, F))
            .collect();
        assert_eq!(k.simulate_topk(&vals, 3), vec![1, 3, 4]);
        // Requesting more than available truncates.
        assert_eq!(k.simulate_topk(&vals, 10).len(), 5);
    }

    #[test]
    fn ksorter_cost_scales_with_inputs() {
        let small = KSorter {
            width: 16,
            inputs: 4,
        }
        .cost();
        let big = KSorter {
            width: 16,
            inputs: 16,
        }
        .cost();
        // 15 comparator stages vs 3, with a slightly wider index mux.
        assert!(big.lut >= small.lut * 5, "{} vs {}", big.lut, small.lut);
    }
}
