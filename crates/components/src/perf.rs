//! Hardware performance counters.
//!
//! Every generated accelerator carries one `perf_counters` instance: a
//! free-running cycle counter plus event counters for datapath activity,
//! MAC operations, buffer traffic, AGU bursts and DRAM stalls, exposed
//! through a small readable register map (`sel` → `rdata`). The timing
//! simulator produces the same counter set analytically (`CounterSet` in
//! `deepburning-sim`), and the differential harness replays the compiled
//! schedule into this block to check the two views agree.

use crate::cost::{adder_luts, comparator_luts, mux_luts, ResourceCost};
use crate::Block;
use deepburning_verilog::{BinaryOp, Expr, Item, NetDecl, Port, Sensitivity, Stmt, VModule};

/// Register-map selector values, in `sel` order. Kept in sync with
/// DESIGN.md §10 and the readback order in `deepburning-sim`.
pub const PERF_REG_NAMES: [&str; 8] = [
    "cycles",
    "active_cycles",
    "stall_cycles",
    "mac_ops",
    "buffer_reads",
    "buffer_writes",
    "agu_bursts",
    "buffer_peak",
];

/// `sel` value of the free-running cycle counter.
pub const PERF_SEL_CYCLES: u64 = 0;
/// `sel` value of the neuron-array active-cycle counter.
pub const PERF_SEL_ACTIVE: u64 = 1;
/// `sel` value of the DRAM-stall cycle counter.
pub const PERF_SEL_STALL: u64 = 2;
/// `sel` value of the MAC-operation counter.
pub const PERF_SEL_MACS: u64 = 3;
/// `sel` value of the buffer-read counter.
pub const PERF_SEL_BUF_READS: u64 = 4;
/// `sel` value of the buffer-write counter.
pub const PERF_SEL_BUF_WRITES: u64 = 5;
/// `sel` value of the AGU-burst counter.
pub const PERF_SEL_BURSTS: u64 = 6;
/// `sel` value of the peak buffer-occupancy register.
pub const PERF_SEL_PEAK: u64 = 7;

/// The performance-counter block.
///
/// Eight counters behind a 3-bit register map:
///
/// | `sel` | register       | update while `en`                       |
/// |-------|----------------|-----------------------------------------|
/// | 0     | `cycles`       | +1 every clock                          |
/// | 1     | `active_cycles`| +1 when `active`                        |
/// | 2     | `stall_cycles` | +1 when `stall`                         |
/// | 3     | `mac_ops`      | +`mac_inc`                              |
/// | 4     | `buffer_reads` | +`rd_inc`                               |
/// | 5     | `buffer_writes`| +`wr_inc`                               |
/// | 6     | `agu_bursts`   | +`burst_inc`                            |
/// | 7     | `buffer_peak`  | max of `occupancy` seen so far          |
///
/// Counters hold their value while `en` is low and clear on `rst`, so a
/// host can stop the accelerator and read the map at leisure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// Counter register width (≤ 64 for the interpreter).
    pub width: u32,
    /// Width of the increment buses (`mac_inc`, `rd_inc`, `wr_inc`,
    /// `burst_inc`) and the `occupancy` input.
    pub inc_width: u32,
}

impl Default for PerfCounters {
    fn default() -> Self {
        // 48-bit counters never wrap within a forward pass (2^48 cycles at
        // 100 MHz ≈ 32 days); 24-bit increments cover any per-cycle event
        // count the generator can wire up.
        PerfCounters {
            width: 48,
            inc_width: 24,
        }
    }
}

impl PerfCounters {
    /// Register-select width (eight registers).
    pub fn sel_width(&self) -> u32 {
        3
    }
}

impl Block for PerfCounters {
    fn module_name(&self) -> String {
        format!("perf_counters_w{}_i{}", self.width, self.inc_width)
    }

    fn generate(&self) -> VModule {
        let w = self.width;
        let iw = self.inc_width;
        let sw = self.sel_width();
        let mut m = VModule::new(self.module_name());
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("en", 1))
            .port(Port::input("active", 1))
            .port(Port::input("stall", 1))
            .port(Port::input("mac_inc", iw))
            .port(Port::input("rd_inc", iw))
            .port(Port::input("wr_inc", iw))
            .port(Port::input("burst_inc", iw))
            .port(Port::input("occupancy", iw))
            .port(Port::input("sel", sw))
            .port(Port::output("rdata", w));

        let regs = [
            "c_cycles", "c_active", "c_stall", "c_macs", "c_rd", "c_wr", "c_burst", "c_peak",
        ];
        for r in regs {
            m.item(Item::Net(NetDecl::reg(r, w)));
        }

        let zext = |name: &str| Expr::Concat(vec![Expr::lit(w - iw, 0), Expr::id(name)]);
        let bump = |reg: &str, by: Expr| {
            Stmt::NonBlocking(Expr::id(reg), Expr::bin(BinaryOp::Add, Expr::id(reg), by))
        };
        let bump_if = |cond: &str, reg: &str| Stmt::If {
            cond: Expr::id(cond),
            then_body: vec![Stmt::NonBlocking(
                Expr::id(reg),
                Expr::bin(BinaryOp::Add, Expr::id(reg), Expr::lit(w, 1)),
            )],
            else_body: vec![],
        };

        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: regs
                    .iter()
                    .map(|r| Stmt::NonBlocking(Expr::id(*r), Expr::lit(w, 0)))
                    .collect(),
                else_body: vec![Stmt::If {
                    cond: Expr::id("en"),
                    then_body: vec![
                        bump("c_cycles", Expr::lit(w, 1)),
                        bump_if("active", "c_active"),
                        bump_if("stall", "c_stall"),
                        bump("c_macs", zext("mac_inc")),
                        bump("c_rd", zext("rd_inc")),
                        bump("c_wr", zext("wr_inc")),
                        bump("c_burst", zext("burst_inc")),
                        Stmt::If {
                            cond: Expr::bin(BinaryOp::Lt, Expr::id("c_peak"), zext("occupancy")),
                            then_body: vec![Stmt::NonBlocking(
                                Expr::id("c_peak"),
                                zext("occupancy"),
                            )],
                            else_body: vec![],
                        },
                    ],
                    else_body: vec![],
                }],
            }],
        });

        // Register-map readback: a select mux over the eight counters.
        let mut rdata = Expr::lit(w, 0);
        for (i, r) in regs.iter().enumerate().rev() {
            rdata = Expr::Ternary(
                Box::new(Expr::bin(
                    BinaryOp::Eq,
                    Expr::id("sel"),
                    Expr::lit(sw, i as u64),
                )),
                Box::new(Expr::id(*r)),
                Box::new(rdata),
            );
        }
        m.item(Item::Assign {
            lhs: Expr::id("rdata"),
            rhs: rdata,
        });
        m
    }

    fn cost(&self) -> ResourceCost {
        // Eight accumulators plus the readback mux and peak comparator.
        let lut = adder_luts(self.width) * 7
            + comparator_luts(self.width)
            + mux_luts(self.width) * 8
            + comparator_luts(self.sel_width()) * 8;
        ResourceCost::logic(0, lut, self.width * 8)
    }

    fn describe(&self) -> String {
        format!(
            "perf counters: 8 x {}-bit, {}-bit increments",
            self.width, self.inc_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{lint_design, Design, Interpreter};

    fn interp(pc: &PerfCounters) -> Interpreter {
        let design = Design::new(pc.generate());
        let report = lint_design(&design);
        assert!(report.is_clean(), "{report}");
        Interpreter::elaborate(&design, &pc.module_name()).expect("elaborates")
    }

    fn read_reg(it: &mut Interpreter, sel: u64) -> u64 {
        it.poke("sel", sel).unwrap();
        it.poke("en", 0).unwrap();
        it.clock().unwrap();
        it.read("rdata").unwrap()
    }

    #[test]
    fn lints_clean_across_widths() {
        for (w, iw) in [(32u32, 8u32), (48, 24), (64, 16)] {
            let pc = PerfCounters {
                width: w,
                inc_width: iw,
            };
            let report = lint_design(&Design::new(pc.generate()));
            assert!(report.is_clean(), "w={w} iw={iw}: {report}");
        }
    }

    #[test]
    fn counts_cycles_events_and_increments() {
        let pc = PerfCounters::default();
        let mut it = interp(&pc);
        it.poke("rst", 1).unwrap();
        it.clock().unwrap();
        it.poke("rst", 0).unwrap();
        it.poke("en", 1).unwrap();
        // Beat 1: active, 5 MACs, 2 reads, 1 write, 1 burst, occupancy 7.
        for (port, v) in [
            ("active", 1),
            ("stall", 0),
            ("mac_inc", 5),
            ("rd_inc", 2),
            ("wr_inc", 1),
            ("burst_inc", 1),
            ("occupancy", 7),
        ] {
            it.poke(port, v).unwrap();
        }
        it.clock().unwrap();
        // Beat 2: stalled, occupancy falls back — peak must hold.
        for (port, v) in [
            ("active", 0),
            ("stall", 1),
            ("mac_inc", 0),
            ("rd_inc", 0),
            ("wr_inc", 3),
            ("burst_inc", 0),
            ("occupancy", 4),
        ] {
            it.poke(port, v).unwrap();
        }
        it.clock().unwrap();
        assert_eq!(read_reg(&mut it, PERF_SEL_CYCLES), 2);
        assert_eq!(read_reg(&mut it, PERF_SEL_ACTIVE), 1);
        assert_eq!(read_reg(&mut it, PERF_SEL_STALL), 1);
        assert_eq!(read_reg(&mut it, PERF_SEL_MACS), 5);
        assert_eq!(read_reg(&mut it, PERF_SEL_BUF_READS), 2);
        assert_eq!(read_reg(&mut it, PERF_SEL_BUF_WRITES), 4);
        assert_eq!(read_reg(&mut it, PERF_SEL_BURSTS), 1);
        assert_eq!(read_reg(&mut it, PERF_SEL_PEAK), 7);
    }

    #[test]
    fn counters_hold_while_disabled_and_clear_on_reset() {
        let pc = PerfCounters::default();
        let mut it = interp(&pc);
        it.poke("rst", 1).unwrap();
        it.clock().unwrap();
        it.poke("rst", 0).unwrap();
        it.poke("en", 1).unwrap();
        it.poke("mac_inc", 9).unwrap();
        it.clock().unwrap();
        // Disabled clocks must not count.
        it.poke("en", 0).unwrap();
        it.clock().unwrap();
        it.clock().unwrap();
        assert_eq!(read_reg(&mut it, PERF_SEL_CYCLES), 1);
        assert_eq!(read_reg(&mut it, PERF_SEL_MACS), 9);
        it.poke("rst", 1).unwrap();
        it.clock().unwrap();
        it.poke("rst", 0).unwrap();
        assert_eq!(read_reg(&mut it, PERF_SEL_MACS), 0);
    }

    #[test]
    fn register_names_match_map() {
        assert_eq!(PERF_REG_NAMES.len(), 8);
        assert_eq!(PERF_REG_NAMES[PERF_SEL_MACS as usize], "mac_ops");
        assert_eq!(PERF_REG_NAMES[PERF_SEL_PEAK as usize], "buffer_peak");
    }

    #[test]
    fn cost_scales_with_width() {
        let narrow = PerfCounters {
            width: 32,
            inc_width: 16,
        }
        .cost();
        let wide = PerfCounters::default().cost();
        assert!(wide.ff > narrow.ff);
        assert!(wide.lut > narrow.lut);
        assert_eq!(wide.dsp, 0);
    }
}
