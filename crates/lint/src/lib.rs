//! Static netlist analyzer for generated accelerators.
//!
//! The differential harness in `deepburning-sim` only catches bugs on the
//! inputs it happens to simulate. This crate proves properties of the
//! generated artifacts *before* any simulation runs, in milliseconds:
//!
//! 1. **Structural RTL lint** ([`structural`]) — undriven/unused nets,
//!    multiple drivers, width mismatches with implicit truncation.
//! 2. **Combinational-loop diagnosis** ([`comb`]) — reports the actual
//!    cycle path that would make levelization fail.
//! 3. **FSM reachability** ([`fsm`]) — dead states and unreachable
//!    transitions in literal-encoded state machines.
//! 4. **Fixed-point range analysis** ([`range`]) — interval propagation
//!    through the quantised datapath proving per-layer no-overflow for
//!    the chosen `QFormat`.
//! 5. **AGU bounds proof** ([`agu`]) — every address pattern stays inside
//!    its DRAM segment or on-chip buffer for all fold slices, without
//!    replaying the schedule.
//! 6. **Counter/schedule consistency** ([`sched`]) — the `ctx_lanes`
//!    context-ROM contents must equal the schedule's `counter_lanes`
//!    totals, and the ROM geometry must match the phase count.
//! 7. **Tape interference proof** ([`interfere`]) — the compiled tape's
//!    per-level read/write sets are mutually independent, so the
//!    parallel settle engine's levelized buckets are safe to evaluate
//!    concurrently (DESIGN.md §17).
//!
//! All passes produce [`Diagnostic`]s with a stable rule id, severity,
//! module/signal location, a source span into the emitted Verilog, and a
//! suggested fix where one exists. [`analyze`] runs the full pipeline.

pub mod agu;
pub mod comb;
pub mod fsm;
pub mod interfere;
pub mod range;
pub mod sched;
mod span;
pub mod structural;

pub use range::{analyze_ranges, RangeProof};
pub use span::SpanIndex;

use deepburning_compiler::CompiledNetwork;
use deepburning_model::Network;
use deepburning_tensor::WeightSet;
use deepburning_trace::json::Json;
use deepburning_verilog::Design;
use std::fmt;

/// Severity of a diagnostic, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected behaviour worth surfacing (e.g. a streaming buffer wrap).
    Info,
    /// Suspicious but not provably wrong.
    Warning,
    /// The artifact is broken.
    Error,
}

impl Severity {
    /// Lower-case name as used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a `--deny` style threshold (`info`, `warn`/`warning`,
    /// `error`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<deepburning_verilog::Severity> for Severity {
    fn from(s: deepburning_verilog::Severity) -> Severity {
        match s {
            deepburning_verilog::Severity::Warning => Severity::Warning,
            deepburning_verilog::Severity::Error => Severity::Error,
        }
    }
}

/// One structured finding from a pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule id, `pass/rule` (e.g. `structural/undriven-net`,
    /// `range/definite-overflow`).
    pub rule: String,
    /// Severity.
    pub severity: Severity,
    /// Module (or layer/phase scope) the finding is in, when one exists.
    pub module: Option<String>,
    /// Signal (or segment/state) name the finding is about.
    pub signal: Option<String>,
    /// 1-based line in the emitted Verilog where the subject is declared,
    /// when the design text was available for span resolution.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix, when the pass can propose one.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with no location or suggestion.
    pub fn new(rule: impl Into<String>, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule: rule.into(),
            severity,
            module: None,
            signal: None,
            line: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Sets the module scope.
    #[must_use]
    pub fn in_module(mut self, module: impl Into<String>) -> Self {
        self.module = Some(module.into());
        self
    }

    /// Sets the signal name.
    #[must_use]
    pub fn on_signal(mut self, signal: impl Into<String>) -> Self {
        self.signal = Some(signal.into());
        self
    }

    /// Sets the suggested fix.
    #[must_use]
    pub fn suggest(mut self, fix: impl Into<String>) -> Self {
        self.suggestion = Some(fix.into());
        self
    }

    fn to_json(&self) -> Json {
        let opt = |v: &Option<String>| match v {
            Some(s) => Json::str(s.clone()),
            None => Json::Null,
        };
        Json::obj([
            ("rule", Json::str(self.rule.clone())),
            ("severity", Json::str(self.severity.name())),
            ("module", opt(&self.module)),
            ("signal", opt(&self.signal)),
            (
                "line",
                self.line.map_or(Json::Null, |l| Json::num(l as f64)),
            ),
            ("message", Json::str(self.message.clone())),
            ("suggestion", opt(&self.suggestion)),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.rule)?;
        match (&self.module, &self.signal) {
            (Some(m), Some(s)) => write!(f, " {m}.{s}")?,
            (Some(m), None) => write!(f, " {m}")?,
            (None, Some(s)) => write!(f, " {s}")?,
            (None, None) => {}
        }
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(fix) = &self.suggestion {
            write!(f, "\n  fix: {fix}")?;
        }
        Ok(())
    }
}

/// The outcome of running the full pass pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// All diagnostics, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-layer range proofs from the fixed-point analysis (empty when
    /// the pass ran without weights).
    pub proofs: Vec<RangeProof>,
    /// The tape interference proof from pass 7 (`None` when the design
    /// did not compile; earlier passes own that failure).
    pub interference: Option<deepburning_verilog::InterferenceReport>,
}

impl AnalysisReport {
    /// Number of diagnostics at or above `threshold`.
    pub fn count_at(&self, threshold: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= threshold)
            .count()
    }

    /// True when no diagnostic reaches `threshold`.
    pub fn is_clean_at(&self, threshold: Severity) -> bool {
        self.count_at(threshold) == 0
    }

    /// Sorts diagnostics most-severe-first (stable within a severity).
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| std::cmp::Reverse(d.severity));
    }

    /// Resolves source spans against the emitted Verilog text.
    pub fn resolve_spans(&mut self, verilog: &str) {
        let index = SpanIndex::build(verilog);
        for d in &mut self.diagnostics {
            if d.line.is_none() {
                if let (Some(m), Some(s)) = (&d.module, &d.signal) {
                    d.line = index.resolve(m, s);
                }
            }
        }
    }

    /// The report as a JSON tree (schema documented in DESIGN.md §12).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "diagnostics",
                Json::arr(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
            (
                "counts",
                Json::obj([
                    ("error", Json::num(self.count_at(Severity::Error) as f64)),
                    (
                        "warning",
                        Json::num(
                            (self.count_at(Severity::Warning) - self.count_at(Severity::Error))
                                as f64,
                        ),
                    ),
                    (
                        "info",
                        Json::num(
                            (self.diagnostics.len() - self.count_at(Severity::Warning)) as f64,
                        ),
                    ),
                ]),
            ),
            (
                "range_proofs",
                Json::arr(self.proofs.iter().map(RangeProof::to_json)),
            ),
            (
                "interference",
                self.interference.as_ref().map_or(Json::Null, |p| {
                    Json::obj([
                        ("proven", Json::Bool(p.is_proven())),
                        ("instrs", Json::num(p.instrs as f64)),
                        ("levels", Json::num(p.levels as f64)),
                        ("edges_checked", Json::num(p.edges_checked as f64)),
                        (
                            "write_pairs_checked",
                            Json::num(p.write_pairs_checked as f64),
                        ),
                        ("violations", Json::num(p.violations.len() as f64)),
                    ])
                }),
            ),
        ])
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            writeln!(f, "analysis clean ({} range proofs)", self.proofs.len())?;
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Runs the full seven-pass pipeline over one generated accelerator.
///
/// `weights` enables the fixed-point range pass (pass 4); without them the
/// pass is skipped because interval bounds need the actual quantised
/// magnitudes. `verilog` (the emitted text) enables source spans.
pub fn analyze(
    net: &Network,
    compiled: &CompiledNetwork,
    design: &Design,
    weights: Option<&WeightSet>,
    verilog: Option<&str>,
) -> AnalysisReport {
    let _span = deepburning_trace::span("lint", "lint.analyze");
    let mut report = AnalysisReport::default();
    report.diagnostics.extend(structural::run(design));
    report.diagnostics.extend(comb::run(design));
    report.diagnostics.extend(fsm::run(design));
    if let Some(ws) = weights {
        let (proofs, diags) = range::analyze_ranges(
            net,
            ws,
            Some(&compiled.luts),
            compiled.config.format,
            range::DEFAULT_INPUT_BOUND,
        );
        report.proofs = proofs;
        report.diagnostics.extend(diags);
    }
    report.diagnostics.extend(agu::run(compiled));
    report
        .diagnostics
        .extend(sched::run(compiled, Some(design)));
    let (proof, diags) = interfere::run(design);
    report.interference = proof;
    report.diagnostics.extend(diags);
    if let Some(text) = verilog {
        report.resolve_spans(text);
    }
    report.sort();
    report
}
