//! Pass 6: counter/schedule consistency.
//!
//! The compiler derives three views of the same control flow — the
//! folding plan, the control schedule, and the AGU program list — and
//! the generator bakes the schedule's `counter_lanes` column into the
//! `ctx_lanes` context ROM that drives the performance counters. A
//! mismatch anywhere silently corrupts the MAC counter cross-check, so
//! this pass re-derives every invariant:
//!
//! * one schedule step and one AGU program per folding phase, in phase
//!   order (`sched/phase-count`, `sched/phase-order`, `sched/agu-count`);
//! * `counter_lanes` equals the phase's active lane count for compute
//!   phases and zero otherwise (`sched/ctx-lanes`);
//! * every ROM word fits the counter increment bus
//!   (`sched/lanes-overflow`);
//! * the `ctx_lanes` ROM declared in the top module has one word per
//!   phase at the increment-bus width (`sched/rom-shape`).

use crate::{Diagnostic, Severity};
use deepburning_compiler::{CompiledNetwork, PhaseKind};
use deepburning_components::PerfCounters;
use deepburning_verilog::{Design, Item, NetKind};

/// Checks schedule/counter consistency, and the ROM geometry when the
/// assembled design is available.
pub fn run(compiled: &CompiledNetwork, design: Option<&Design>) -> Vec<Diagnostic> {
    let _span = deepburning_trace::span("lint", "lint.sched");
    let mut diags = Vec::new();
    let phases = &compiled.folding.phases;
    let steps = &compiled.schedule.steps;
    let inc_width = PerfCounters::default().inc_width;
    if steps.len() != phases.len() {
        diags.push(
            Diagnostic::new(
                "sched/phase-count",
                Severity::Error,
                format!(
                    "schedule has {} steps for {} folding phases",
                    steps.len(),
                    phases.len()
                ),
            )
            .suggest("rebuild the schedule from the folding plan"),
        );
    }
    for (phase, step) in phases.iter().zip(steps) {
        if step.phase != phase.id {
            diags.push(
                Diagnostic::new(
                    "sched/phase-order",
                    Severity::Error,
                    format!(
                        "schedule step for phase {} sits at position {} ({})",
                        step.phase, phase.id, phase.layer
                    ),
                )
                .in_module(phase.layer.clone()),
            );
            continue;
        }
        let expected = if phase.kind == PhaseKind::Compute {
            phase.active_lanes.max(1)
        } else {
            0
        };
        if step.counter_lanes != expected {
            diags.push(
                Diagnostic::new(
                    "sched/ctx-lanes",
                    Severity::Error,
                    format!(
                        "phase {} ({}): ctx_lanes ROM word is {} but the folding \
                         plan keeps {} lanes busy",
                        phase.id, phase.layer, step.counter_lanes, expected
                    ),
                )
                .in_module(phase.layer.clone())
                .on_signal("ctx_lanes")
                .suggest("regenerate the schedule so counter_lanes matches active_lanes"),
            );
        }
    }
    for (i, word) in compiled.schedule.counter_lane_words().iter().enumerate() {
        if inc_width < 64 && *word >= (1u64 << inc_width) {
            diags.push(
                Diagnostic::new(
                    "sched/lanes-overflow",
                    Severity::Error,
                    format!(
                        "ctx_lanes word {word} of phase {i} does not fit the \
                         {inc_width}-bit counter increment bus"
                    ),
                )
                .on_signal("ctx_lanes"),
            );
        }
    }
    if compiled.agu_programs.len() != phases.len() {
        diags.push(Diagnostic::new(
            "sched/agu-count",
            Severity::Error,
            format!(
                "{} AGU programs for {} folding phases",
                compiled.agu_programs.len(),
                phases.len()
            ),
        ));
    }
    if let Some(design) = design {
        let rom = design
            .modules
            .iter()
            .find(|m| m.name == design.top)
            .and_then(|top| {
                top.items.iter().find_map(|i| match i {
                    Item::Net(n) if n.name == "ctx_lanes" && n.kind == NetKind::Reg => Some(n),
                    _ => None,
                })
            });
        match rom {
            None => diags.push(
                Diagnostic::new(
                    "sched/rom-shape",
                    Severity::Error,
                    format!("top module `{}` declares no ctx_lanes ROM", design.top),
                )
                .in_module(design.top.clone())
                .on_signal("ctx_lanes"),
            ),
            Some(n) => {
                if n.depth != Some(steps.len().max(1)) || n.width != inc_width {
                    diags.push(
                        Diagnostic::new(
                            "sched/rom-shape",
                            Severity::Error,
                            format!(
                                "ctx_lanes ROM is {}x{:?} words but the schedule needs \
                                 {}x{} bits",
                                n.width,
                                n.depth,
                                inc_width,
                                steps.len()
                            ),
                        )
                        .in_module(design.top.clone())
                        .on_signal("ctx_lanes"),
                    );
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_core::{generate, Budget};
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    name: "s"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 8 width: 8 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 4 kernel_size: 3 stride: 1 } }
    layers { name: "fc" type: FC bottom: "conv" top: "fc"
             param { num_output: 4 } }
    "#;

    #[test]
    fn generated_schedule_is_consistent() {
        let net = parse_network(SRC).expect("parses");
        let acc = generate(&net, &Budget::Small).expect("generates");
        let diags = run(&acc.compiled, Some(&acc.design));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// Injected defect: corrupting one ctx_lanes ROM word must raise
    /// `sched/ctx-lanes` naming the phase's layer.
    #[test]
    fn corrupted_ctx_lanes_fires() {
        let net = parse_network(SRC).expect("parses");
        let mut acc = generate(&net, &Budget::Small).expect("generates");
        let step = acc.compiled.schedule.steps.first_mut().expect("has steps");
        step.counter_lanes += 7;
        let diags = run(&acc.compiled, Some(&acc.design));
        let hit = diags
            .iter()
            .find(|d| d.rule == "sched/ctx-lanes")
            .expect("ROM corruption detected");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(hit.signal.as_deref(), Some("ctx_lanes"));
    }

    /// Injected defect: dropping a schedule step must raise
    /// `sched/phase-count`.
    #[test]
    fn dropped_step_fires() {
        let net = parse_network(SRC).expect("parses");
        let mut acc = generate(&net, &Budget::Small).expect("generates");
        acc.compiled.schedule.steps.pop();
        let diags = run(&acc.compiled, None);
        assert!(
            diags.iter().any(|d| d.rule == "sched/phase-count"),
            "{diags:?}"
        );
    }
}
