//! Source spans into the emitted Verilog.
//!
//! The generator works on the AST, so findings carry `(module, signal)`
//! pairs; users read the emitted text. [`SpanIndex`] scans that text once
//! and maps each declaration (port, wire, reg, memory) to its 1-based
//! line so diagnostics can point into the file the user actually sees.

use std::collections::BTreeMap;

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "reg",
    "signed",
    "assign",
    "always",
    "parameter",
];

/// Maps `(module, signal)` to the declaration line in emitted Verilog.
#[derive(Debug, Clone, Default)]
pub struct SpanIndex {
    lines: BTreeMap<(String, String), usize>,
}

fn is_ident(tok: &str) -> bool {
    let mut chars = tok.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The declared name on a declaration line: the first identifier token
/// that is not a keyword or a width/depth specifier.
fn declared_name(line: &str) -> Option<&str> {
    line.split(|c: char| c.is_whitespace() || c == ';' || c == ',' || c == '(')
        .filter(|t| !t.is_empty())
        .filter(|t| !t.starts_with('['))
        .filter(|t| !KEYWORDS.contains(t))
        .find(|t| is_ident(t))
}

impl SpanIndex {
    /// Builds the index from emitted Verilog text.
    pub fn build(verilog: &str) -> SpanIndex {
        let mut lines = BTreeMap::new();
        let mut module = String::new();
        for (idx, raw) in verilog.lines().enumerate() {
            let line = raw.trim_start();
            if let Some(rest) = line.strip_prefix("module ") {
                module = rest
                    .split(|c: char| c == '(' || c.is_whitespace() || c == ';')
                    .next()
                    .unwrap_or("")
                    .to_string();
                continue;
            }
            if module.is_empty() {
                continue;
            }
            let is_decl = ["input", "output", "wire", "reg"]
                .iter()
                .any(|k| line.starts_with(k) && line[k.len()..].starts_with([' ', '\t']));
            if !is_decl {
                continue;
            }
            if let Some(name) = declared_name(line) {
                lines
                    .entry((module.clone(), name.to_string()))
                    .or_insert(idx + 1);
            }
        }
        SpanIndex { lines }
    }

    /// The 1-based declaration line of `signal` in `module`, if indexed.
    pub fn resolve(&self, module: &str, signal: &str) -> Option<usize> {
        self.lines
            .get(&(module.to_string(), signal.to_string()))
            .copied()
    }

    /// Number of indexed declarations.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_ports_nets_and_memories() {
        let text = "\
module top (\n  input wire clk,\n  output wire [7:0] q\n);\n\
wire [3:0] t;\nreg [7:0] mem [0:15];\nassign q = {t, t};\nendmodule\n";
        let idx = SpanIndex::build(text);
        assert_eq!(idx.resolve("top", "clk"), Some(2));
        assert_eq!(idx.resolve("top", "q"), Some(3));
        assert_eq!(idx.resolve("top", "t"), Some(5));
        assert_eq!(idx.resolve("top", "mem"), Some(6));
        assert_eq!(idx.resolve("top", "nope"), None);
        assert_eq!(idx.resolve("other", "clk"), None);
    }

    #[test]
    fn first_declaration_wins() {
        let text = "module m (\n);\nwire a;\nwire a;\nendmodule\n";
        let idx = SpanIndex::build(text);
        assert_eq!(idx.resolve("m", "a"), Some(3));
    }
}
