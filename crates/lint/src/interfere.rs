//! Pass 7: tape interference proof.
//!
//! The parallel settle engine (DESIGN.md §16) evaluates each levelized
//! bucket of the compiled tape concurrently, which is only sound when
//! same-level instructions are mutually independent. This pass runs the
//! engine's own interference analyzer
//! ([`deepburning_verilog::interference_check`]) over the design's
//! compiled tape and converts any broken proof obligation into an
//! `interfere/<rule>` diagnostic, so an unsafe levelization is caught by
//! `dblint --deny` before any simulation — let alone a parallel one —
//! runs. A clean pass is a machine-checked proof that the partition
//! plan's buckets are safe to evaluate concurrently (DESIGN.md §17).

use crate::{Diagnostic, Severity};
use deepburning_verilog::{interference_check, Design, InterferenceReport, InterferenceRule};

/// Runs the interference proof over the design's compiled tape.
///
/// Returns the proof outcome (for the report's `interference` field)
/// plus one diagnostic per violated obligation. When the full top is
/// outside the compiled engine's domain (generated accelerators expose
/// DRAM buses wider than 64 bits at the top), the pass proves every
/// module subtree
/// the engine *can* compile instead and aggregates — those tapes are
/// exactly what a parallel settle of that subtree would run. Designs
/// with no compilable subtree yield no finding here; the structural and
/// comb-loop passes already own outright compiler rejections.
pub fn run(design: &Design) -> (Option<InterferenceReport>, Vec<Diagnostic>) {
    if let Ok(report) = interference_check(design, &design.top) {
        let diags = diagnostics(&design.top, &report);
        return (Some(report), diags);
    }
    let mut agg = InterferenceReport::default();
    let mut diags = Vec::new();
    let mut proved = false;
    for module in &design.modules {
        if let Ok(report) = interference_check(design, &module.name) {
            proved = true;
            agg.instrs += report.instrs;
            agg.levels = agg.levels.max(report.levels);
            agg.edges_checked += report.edges_checked;
            agg.write_pairs_checked += report.write_pairs_checked;
            diags.extend(diagnostics(&module.name, &report));
            agg.violations.extend(report.violations);
        }
    }
    if proved {
        (Some(agg), diags)
    } else {
        (None, Vec::new())
    }
}

/// Converts a proof report's violations into `interfere/<rule>`
/// diagnostics. Split out from [`run`] so injected-defect tests can
/// exercise the conversion on hand-built reports (a valid design never
/// produces a violation — that is the point of the proof).
pub fn diagnostics(top: &str, report: &InterferenceReport) -> Vec<Diagnostic> {
    report
        .violations
        .iter()
        .map(|v| {
            let suggestion = match v.rule {
                InterferenceRule::WriteOverlap => {
                    "merge the writers or move one to a later level; two same-level \
                     instructions must never write overlapping bits"
                }
                InterferenceRule::SameLevelRaw => {
                    "re-levelize: a reader must sit on a strictly higher level than \
                     its writer"
                }
                InterferenceRule::LevelInversion | InterferenceRule::TapeOrder => {
                    "the levelization invariant is broken upstream; re-run Kahn \
                     levelization over the dependence graph"
                }
                InterferenceRule::FanoutDrift => {
                    "rebuild the fanout CSR from the bytecode read sets; the engine's \
                     dirty propagation disagrees with the tape"
                }
            };
            Diagnostic::new(
                format!("interfere/{}", v.rule.tag()),
                Severity::Error,
                format!("tape[{}] vs tape[{}]: {}", v.a, v.b, v.message),
            )
            .in_module(top)
            .on_signal(v.subject.clone())
            .suggest(suggestion)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{BinaryOp, Design, Expr, InterferenceViolation, Item, Port, VModule};

    fn adder_design() -> Design {
        let mut m = VModule::new("add");
        m.port(Port::input("a", 8))
            .port(Port::input("b", 8))
            .port(Port::output("s", 8));
        m.item(Item::Assign {
            lhs: Expr::id("s"),
            rhs: Expr::bin(BinaryOp::Add, Expr::id("a"), Expr::id("b")),
        });
        Design::new(m)
    }

    /// A valid design compiles to a proven-independent tape: the pass
    /// records the proof and emits nothing.
    #[test]
    fn valid_design_is_proven_with_no_findings() {
        let (proof, diags) = run(&adder_design());
        let proof = proof.expect("compiles, so the proof ran");
        assert!(proof.is_proven(), "{proof}");
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// A top outside the compiled engine's domain (a >64-bit bus, as on
    /// every generated accelerator's DRAM interface) falls back to
    /// proving the compilable module subtrees.
    #[test]
    fn wide_top_falls_back_to_module_subtrees() {
        let mut top = VModule::new("wide");
        top.port(Port::input("bus", 256))
            .port(Port::output("q", 256));
        top.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("bus"),
        });
        let mut design = Design::new(top);
        design.add_module({
            let mut m = VModule::new("add");
            m.port(Port::input("a", 8))
                .port(Port::input("b", 8))
                .port(Port::output("s", 8));
            m.item(Item::Assign {
                lhs: Expr::id("s"),
                rhs: Expr::bin(BinaryOp::Add, Expr::id("a"), Expr::id("b")),
            });
            m
        });
        let (proof, diags) = run(&design);
        let proof = proof.expect("the leaf module subtree is provable");
        assert!(proof.is_proven(), "{proof}");
        assert!(proof.instrs > 0, "the proof must cover the leaf tape");
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// Injected defect: a violated obligation becomes an actionable
    /// `interfere/<rule>` error naming the contested signal.
    #[test]
    fn violation_becomes_error_diagnostic() {
        let report = InterferenceReport {
            instrs: 3,
            levels: 1,
            edges_checked: 2,
            write_pairs_checked: 1,
            violations: vec![InterferenceViolation {
                rule: InterferenceRule::WriteOverlap,
                level: 0,
                a: 0,
                b: 1,
                subject: "x".into(),
                message: "writes overlapping bits".into(),
            }],
        };
        let diags = diagnostics("pair", &report);
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.rule, "interfere/write-overlap");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.module.as_deref(), Some("pair"));
        assert_eq!(d.signal.as_deref(), Some("x"));
        assert!(d.message.contains("tape[0] vs tape[1]"), "{}", d.message);
        assert!(d.suggestion.is_some(), "must propose a fix");
    }

    /// Every rule maps to a distinct stable id and carries a suggestion.
    #[test]
    fn every_rule_has_stable_id_and_suggestion() {
        let rules = [
            InterferenceRule::WriteOverlap,
            InterferenceRule::SameLevelRaw,
            InterferenceRule::LevelInversion,
            InterferenceRule::TapeOrder,
            InterferenceRule::FanoutDrift,
        ];
        let mut ids = std::collections::BTreeSet::new();
        for rule in rules {
            let report = InterferenceReport {
                violations: vec![InterferenceViolation {
                    rule,
                    level: 0,
                    a: 0,
                    b: 0,
                    subject: "s".into(),
                    message: "m".into(),
                }],
                ..InterferenceReport::default()
            };
            let diags = diagnostics("top", &report);
            assert_eq!(diags.len(), 1);
            assert!(diags[0].rule.starts_with("interfere/"), "{}", diags[0].rule);
            assert!(diags[0].suggestion.is_some());
            ids.insert(diags[0].rule.clone());
        }
        assert_eq!(ids.len(), rules.len(), "rule ids must be distinct");
    }
}
