//! Pass 2: combinational-loop diagnosis.
//!
//! The levelizing compiler refuses designs whose continuous assignments
//! form a cycle, but its error names only one stuck signal. This pass
//! finds the *actual* cycle path through the flattened assign graph (via
//! [`deepburning_verilog::find_comb_cycle`]) and reports it end to end,
//! so the generator bug can be read straight out of the diagnostic.

use crate::{Diagnostic, Severity};
use deepburning_verilog::{find_comb_cycle, Design};

/// Reports the first combinational cycle in the design, if any.
///
/// Elaboration failures (unknown modules, bad ports) yield no finding
/// here — the structural pass already rejects those designs.
pub fn run(design: &Design) -> Vec<Diagnostic> {
    match find_comb_cycle(design, &design.top) {
        Ok(Some(cycle)) => {
            let path = cycle.join(" -> ");
            let first = cycle.first().cloned().unwrap_or_default();
            vec![Diagnostic::new(
                "comb/loop",
                Severity::Error,
                format!("combinational cycle: {path}"),
            )
            .in_module(design.top.clone())
            .on_signal(first)
            .suggest("break the cycle with a register or restructure the assigns")]
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{BinaryOp, Design, Expr, Item, NetDecl, Port, VModule};

    /// Injected defect: `a = b & en; b = a` must raise `comb/loop` with
    /// the full cycle path in the message.
    #[test]
    fn comb_loop_fires_with_cycle_path() {
        let mut m = VModule::new("loopy");
        m.port(Port::input("en", 1));
        m.port(Port::output("q", 1));
        m.item(Item::Net(NetDecl::wire("a", 1)));
        m.item(Item::Net(NetDecl::wire("b", 1)));
        m.item(Item::Assign {
            lhs: Expr::id("a"),
            rhs: Expr::bin(BinaryOp::And, Expr::id("b"), Expr::id("en")),
        });
        m.item(Item::Assign {
            lhs: Expr::id("b"),
            rhs: Expr::id("a"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("a"),
        });
        let diags = run(&Design::new(m));
        let hit = diags.iter().find(|d| d.rule == "comb/loop").expect("fires");
        assert_eq!(hit.severity, Severity::Error);
        assert!(
            hit.message.contains("a -> b -> a") || hit.message.contains("b -> a -> b"),
            "cycle path missing: {}",
            hit.message
        );
    }

    /// A clean pipeline of assigns must produce no finding.
    #[test]
    fn acyclic_design_is_clean() {
        let mut m = VModule::new("ok");
        m.port(Port::input("a", 1));
        m.port(Port::output("q", 1));
        m.item(Item::Net(NetDecl::wire("t", 1)));
        m.item(Item::Assign {
            lhs: Expr::id("t"),
            rhs: Expr::id("a"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("t"),
        });
        assert!(run(&Design::new(m)).is_empty());
    }
}
