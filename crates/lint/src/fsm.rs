//! Pass 3: FSM reachability.
//!
//! Finds literal-encoded state machines — registers whose every clocked
//! assignment is a literal constant and that are compared against
//! literals — and computes the reachable state set from the power-on
//! value by propagating assignments under their `if`/`case` state
//! guards. States that appear in the machine (assigned or guarded
//! against) but can never be reached are dead: either leftover encodings
//! or transitions that can never fire.
//!
//! Counter-style registers (assigned `r + 1`) are deliberately out of
//! scope: their reachability is arithmetic, not structural, and flagging
//! them would false-positive on every phase counter the generator emits.

use crate::{Diagnostic, Severity};
use deepburning_verilog::{
    BinaryOp, Design, Expr, Item, NetDecl, NetKind, Sensitivity, Stmt, VModule,
};
use std::collections::BTreeSet;

/// State registers narrower than 2 bits cannot encode a machine worth
/// checking; wider than this cap they are datapath, not control.
const MAX_STATE_BITS: u32 = 12;

/// `Some(v)` when `cond` being true implies `reg == v`. Conjunctions
/// recurse so `rst == 0 && state == 2` still constrains `state`.
fn constrains(cond: &Expr, reg: &str) -> Option<u64> {
    match cond {
        Expr::Binary(BinaryOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Id(id), Expr::Lit { value, .. }) if id == reg => Some(*value),
            (Expr::Lit { value, .. }, Expr::Id(id)) if id == reg => Some(*value),
            _ => None,
        },
        Expr::Binary(BinaryOp::LogAnd, l, r) => constrains(l, reg).or_else(|| constrains(r, reg)),
        _ => None,
    }
}

/// The source states an edge can fire from: `None` = any state.
type FromSet = Option<BTreeSet<u64>>;

struct Machine<'a> {
    reg: &'a str,
    /// `(from, to)` transition edges.
    edges: Vec<(FromSet, u64)>,
    /// Every literal the register is assigned.
    assigned: BTreeSet<u64>,
    /// Every literal the register is compared against.
    compared: BTreeSet<u64>,
    /// True while all observed assignments have literal right-hand sides.
    literal_only: bool,
}

impl<'a> Machine<'a> {
    fn walk(&mut self, stmts: &[Stmt], from: &FromSet) {
        for stmt in stmts {
            match stmt {
                Stmt::NonBlocking(lhs, rhs) | Stmt::Blocking(lhs, rhs) => {
                    if matches!(lhs, Expr::Id(id) if id == self.reg) {
                        if let Expr::Lit { value, .. } = rhs {
                            self.assigned.insert(*value);
                            self.edges.push((from.clone(), *value));
                        } else {
                            self.literal_only = false;
                        }
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.note_comparisons(cond);
                    if let Some(v) = constrains(cond, self.reg) {
                        let then_from = match from {
                            None => Some(BTreeSet::from([v])),
                            Some(s) => {
                                Some(s.intersection(&BTreeSet::from([v])).copied().collect())
                            }
                        };
                        let else_from = from.clone().map(|mut s: BTreeSet<u64>| {
                            s.remove(&v);
                            s
                        });
                        self.walk(then_body, &then_from);
                        self.walk(else_body, &else_from);
                    } else {
                        self.walk(then_body, from);
                        self.walk(else_body, from);
                    }
                }
                Stmt::Case {
                    subject,
                    arms,
                    default,
                } => {
                    let on_reg = matches!(subject, Expr::Id(id) if id == self.reg);
                    let mut covered = BTreeSet::new();
                    for (guard, body) in arms {
                        if on_reg {
                            if let Expr::Lit { value, .. } = guard {
                                self.compared.insert(*value);
                                covered.insert(*value);
                                let arm_from = match from {
                                    None => Some(BTreeSet::from([*value])),
                                    Some(s) if s.contains(value) => Some(BTreeSet::from([*value])),
                                    Some(_) => Some(BTreeSet::new()),
                                };
                                self.walk(body, &arm_from);
                                continue;
                            }
                        }
                        self.walk(body, from);
                    }
                    let default_from = if on_reg {
                        from.clone().map(|mut s: BTreeSet<u64>| {
                            s.retain(|v| !covered.contains(v));
                            s
                        })
                    } else {
                        from.clone()
                    };
                    self.walk(default, &default_from);
                }
                Stmt::Comment(_) => {}
            }
        }
    }

    fn note_comparisons(&mut self, cond: &Expr) {
        if let Some(v) = constrains(cond, self.reg) {
            self.compared.insert(v);
        }
        match cond {
            Expr::Unary(_, e) => self.note_comparisons(e),
            Expr::Binary(_, l, r) => {
                self.note_comparisons(l);
                self.note_comparisons(r);
            }
            Expr::Ternary(c, a, b) => {
                self.note_comparisons(c);
                self.note_comparisons(a);
                self.note_comparisons(b);
            }
            _ => {}
        }
    }

    /// Closure over the edges starting from the power-on value 0.
    fn reachable(&self) -> BTreeSet<u64> {
        let mut reach = BTreeSet::from([0u64]);
        loop {
            let before = reach.len();
            for (from, to) in &self.edges {
                let fires = match from {
                    None => true,
                    Some(s) => s.iter().any(|v| reach.contains(v)),
                };
                if fires {
                    reach.insert(*to);
                }
            }
            if reach.len() == before {
                return reach;
            }
        }
    }
}

fn check_module(module: &VModule) -> Vec<Diagnostic> {
    let regs: Vec<&NetDecl> = module
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Net(n)
                if n.kind == NetKind::Reg
                    && n.depth.is_none()
                    && (2..=MAX_STATE_BITS).contains(&n.width) =>
            {
                Some(n)
            }
            _ => None,
        })
        .collect();
    if regs.is_empty() {
        return Vec::new();
    }
    let clocked: Vec<&Vec<Stmt>> = module
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Always {
                sensitivity: Sensitivity::PosEdge(_),
                body,
            } => Some(body),
            _ => None,
        })
        .collect();
    let mut diags = Vec::new();
    for reg in regs {
        let mut machine = Machine {
            reg: &reg.name,
            edges: Vec::new(),
            assigned: BTreeSet::new(),
            compared: BTreeSet::new(),
            literal_only: true,
        };
        for body in &clocked {
            machine.walk(body, &None);
        }
        // Only literal-encoded machines that branch on their own state
        // qualify — everything else is a counter or a datapath register.
        if !machine.literal_only || machine.assigned.is_empty() || machine.compared.is_empty() {
            continue;
        }
        let universe: BTreeSet<u64> = machine.assigned.union(&machine.compared).copied().collect();
        let reach = machine.reachable();
        for dead in universe.difference(&reach) {
            let role = if machine.assigned.contains(dead) {
                "is assigned but never reached"
            } else {
                "guards transitions but is never entered"
            };
            diags.push(
                Diagnostic::new(
                    "fsm/dead-state",
                    Severity::Warning,
                    format!(
                        "state {dead} of `{}` {role} (reachable states: {:?})",
                        reg.name, reach
                    ),
                )
                .in_module(module.name.clone())
                .on_signal(reg.name.clone())
                .suggest("remove the dead state or add a transition into it"),
            );
        }
    }
    diags
}

/// Runs FSM reachability over every module of the design.
pub fn run(design: &Design) -> Vec<Diagnostic> {
    design.modules.iter().flat_map(check_module).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{Port, VModule};

    fn eq(reg: &str, v: u64) -> Expr {
        Expr::bin(BinaryOp::Eq, Expr::id(reg), Expr::lit(2, v))
    }

    fn fsm_module(include_state_3: bool) -> VModule {
        let mut m = VModule::new("ctrl");
        m.port(Port::input("clk", 1));
        m.port(Port::input("rst", 1));
        let mut body = vec![Stmt::If {
            cond: Expr::id("rst"),
            then_body: vec![Stmt::NonBlocking(Expr::id("state"), Expr::lit(2, 0))],
            else_body: vec![Stmt::If {
                cond: eq("state", 0),
                then_body: vec![Stmt::NonBlocking(Expr::id("state"), Expr::lit(2, 1))],
                else_body: vec![Stmt::If {
                    cond: eq("state", 1),
                    then_body: vec![Stmt::NonBlocking(Expr::id("state"), Expr::lit(2, 2))],
                    else_body: vec![Stmt::If {
                        cond: eq("state", 2),
                        then_body: vec![Stmt::NonBlocking(Expr::id("state"), Expr::lit(2, 0))],
                        else_body: vec![],
                    }],
                }],
            }],
        }];
        if include_state_3 {
            // Transition *out of* state 3, but nothing ever enters it.
            body.push(Stmt::If {
                cond: eq("state", 3),
                then_body: vec![Stmt::NonBlocking(Expr::id("state"), Expr::lit(2, 0))],
                else_body: vec![],
            });
        }
        m.item(Item::Net(NetDecl::reg("state", 2)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body,
        });
        m
    }

    /// Injected defect: a guard on state 3 that is never assigned must
    /// raise `fsm/dead-state` naming the state register.
    #[test]
    fn dead_state_fires() {
        let diags = run(&Design::new(fsm_module(true)));
        let hit = diags
            .iter()
            .find(|d| d.rule == "fsm/dead-state")
            .expect("dead state 3 detected");
        assert_eq!(hit.signal.as_deref(), Some("state"));
        assert!(hit.message.contains("state 3"), "{}", hit.message);
    }

    /// The same machine without the dead guard is clean.
    #[test]
    fn live_fsm_is_clean() {
        assert!(run(&Design::new(fsm_module(false))).is_empty());
    }

    /// A counter (`r <= r + 1`) must not be treated as an FSM.
    #[test]
    fn counters_are_ignored() {
        let mut m = VModule::new("cnt");
        m.port(Port::input("clk", 1));
        m.item(Item::Net(NetDecl::reg("n", 4)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::bin(BinaryOp::Eq, Expr::id("n"), Expr::lit(4, 9)),
                then_body: vec![Stmt::NonBlocking(Expr::id("n"), Expr::lit(4, 0))],
                else_body: vec![Stmt::NonBlocking(
                    Expr::id("n"),
                    Expr::bin(BinaryOp::Add, Expr::id("n"), Expr::lit(4, 1)),
                )],
            }],
        });
        assert!(run(&Design::new(m)).is_empty());
    }
}
