//! Pass 4: static fixed-point range analysis.
//!
//! Propagates interval bounds on the *quantised* datapath through the
//! layer graph, proving per-layer that the accumulator never reaches the
//! `QFormat` saturation clamp. The bound model mirrors the functional
//! engine exactly:
//!
//! * MAC layers accumulate `Σ ŵᵢ·x̂ᵢ + b̂` in a wide integer with a single
//!   truncate-and-clamp at the end, so by the triangle inequality the
//!   final value is bounded by `W₁·B_in + |b̂|_max + q` where `W₁` is the
//!   worst per-row L1 norm of the quantised weights, `B_in` bounds the
//!   (already quantised) inputs and `q` is one resolution step of
//!   truncation error.
//! * Approx-LUT outputs interpolate linearly between stored samples, so
//!   they are bounded by the largest stored value no matter the input —
//!   `tanh`/`sigmoid` squash every bound back to ≈1.
//! * Quantising a weight moves it by at most `q` (round-to-nearest), so
//!   `|ŵ| ≤ min(|w| + q, max)` without touching `Fx` per element.
//!
//! A layer is **proven** when its worst-case accumulator stays strictly
//! below `QFormat::max_value`; it is **chain-proven** when every upstream
//! layer is proven too, i.e. the bound holds end-to-end from the network
//! input. Chain-proven layers need no dynamic saturation guard — this is
//! what lets the diff harness fully audit large-fanin layers instead of
//! skip-auditing them under the pessimistic per-term MAC bound.
//!
//! Layers that cannot overflow by construction (pure routing, LUT reads,
//! max-pooling) are proven trivially; layers whose semantics are not
//! value-arithmetic (classifier ranking, associative addressing) are
//! never proven and simply clamp their bound at the format maximum,
//! which is still a valid bound because every stored `Fx` saturates.

use crate::{Diagnostic, Severity};
use deepburning_compiler::LutImages;
use deepburning_fixed::QFormat;
use deepburning_model::{Activation, Layer, LayerKind, Network, Shape};
use deepburning_tensor::WeightSet;
use deepburning_trace::json::Json;
use std::collections::BTreeMap;

/// Default bound on the network input stimulus: the harness drives
/// normalised activations in `[-1, 1]`.
pub const DEFAULT_INPUT_BOUND: f64 = 1.0;

/// The per-layer result of the range analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeProof {
    /// Layer name.
    pub layer: String,
    /// Layer type (prototxt spelling).
    pub kind: String,
    /// Worst-case MAC terms per output (0 for non-MAC layers).
    pub terms: usize,
    /// Worst per-row L1 norm of the quantised weights (0 for non-MAC).
    pub w1: f64,
    /// Bound on the layer's (quantised) input magnitude.
    pub in_bound: f64,
    /// Worst-case accumulator magnitude before clamping.
    pub pre_act_bound: f64,
    /// Bound on the layer's output magnitude.
    pub out_bound: f64,
    /// The accumulator provably stays below the format maximum.
    pub proven: bool,
    /// This layer and every upstream layer are proven.
    pub chain_proven: bool,
}

impl RangeProof {
    /// JSON rendering used by `dblint --json` and the diff report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("layer", Json::str(self.layer.clone())),
            ("kind", Json::str(self.kind.clone())),
            ("terms", Json::num(self.terms as f64)),
            ("w1", Json::num(self.w1)),
            ("in_bound", Json::num(self.in_bound)),
            ("pre_act_bound", Json::num(self.pre_act_bound)),
            ("out_bound", Json::num(self.out_bound)),
            ("proven", Json::Bool(self.proven)),
            ("chain_proven", Json::Bool(self.chain_proven)),
        ])
    }
}

/// `|ŵ| ≤ min(|w| + q, max)`: round-to-nearest moves a value at most one
/// step, and out-of-range values saturate.
fn quant_abs(w: f32, q: f64, max: f64) -> f64 {
    (f64::from(w).abs() + q).min(max)
}

/// Worst per-row quantised L1 norm and the row length.
fn row_stats(w: &[f32], row_len: usize, q: f64, max: f64) -> (f64, usize) {
    if row_len == 0 || w.is_empty() {
        return (0.0, 0);
    }
    let w1 = w
        .chunks(row_len)
        .map(|row| row.iter().map(|v| quant_abs(*v, q, max)).sum::<f64>())
        .fold(0.0f64, f64::max);
    (w1, row_len)
}

/// Largest absolute stored LUT value, or `default` when the image is
/// absent. Interpolation between samples never exceeds the endpoint
/// values, so this bounds the LUT output for *any* input.
fn lut_abs_max(luts: Option<&LutImages>, name: &str, default: f64) -> f64 {
    luts.and_then(|l| l.get(name))
        .map(|lut| {
            lut.values()
                .iter()
                .map(|v| v.to_f64().abs())
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(default)
}

/// Largest quantised bias magnitude, plus a diagnostic if any raw weight
/// or bias is unrepresentable in the format.
fn bias_max(b: &[f32], q: f64, max: f64) -> f64 {
    b.iter()
        .map(|v| quant_abs(*v, q, max))
        .fold(0.0f64, f64::max)
}

struct Ctx<'a> {
    luts: Option<&'a LutImages>,
    q: f64,
    max: f64,
}

struct LayerBound {
    terms: usize,
    w1: f64,
    pre_act: f64,
    out: f64,
    proven: bool,
}

impl LayerBound {
    fn routing(out: f64) -> LayerBound {
        LayerBound {
            terms: 0,
            w1: 0.0,
            pre_act: out,
            out,
            proven: true,
        }
    }

    fn unprovable(max: f64) -> LayerBound {
        LayerBound {
            terms: 0,
            w1: 0.0,
            pre_act: max,
            out: max,
            proven: false,
        }
    }
}

/// One MAC bank: `pre = W₁·B_in + b_max + q`, proven iff below the clamp.
fn mac_bank(w: &[f32], b: &[f32], row_len: usize, in_bound: f64, ctx: &Ctx) -> LayerBound {
    let (w1, terms) = row_stats(w, row_len, ctx.q, ctx.max);
    let pre = w1 * in_bound + bias_max(b, ctx.q, ctx.max) + ctx.q;
    LayerBound {
        terms,
        w1,
        pre_act: pre,
        out: pre.min(ctx.max),
        proven: pre < ctx.max,
    }
}

fn layer_bound(
    layer: &Layer,
    w: &[f32],
    b: &[f32],
    in_shape: Shape,
    in_bound: f64,
    sum_in_bound: f64,
    ctx: &Ctx,
) -> LayerBound {
    let name = layer.name.as_str();
    match &layer.kind {
        LayerKind::Input { .. } => LayerBound::routing(in_bound),
        LayerKind::Convolution(p) => {
            let row = (in_shape.channels / p.group.max(1)) * p.kernel_size * p.kernel_size;
            mac_bank(w, b, row, in_bound, ctx)
        }
        LayerKind::FullConnection(p) => {
            let _ = p;
            mac_bank(w, b, in_shape.elements(), in_bound, ctx)
        }
        LayerKind::Recurrent { num_output, steps } => {
            let n_in = in_shape.elements();
            let row = n_in + num_output;
            let (w1, terms) = row_stats(w, row, ctx.q, ctx.max);
            let bmax = bias_max(b, ctx.q, ctx.max);
            let tanh_cap = lut_abs_max(ctx.luts, "tanh", 1.0);
            // The state is squashed through the tanh LUT every step, so
            // its bound is the LUT cap regardless of the accumulator —
            // but the proof needs every step's accumulator in range.
            let mut h_bound = 0.0f64;
            let mut worst = 0.0f64;
            let mut proven = true;
            for _ in 0..(*steps).max(1) {
                let pre = w1 * in_bound.max(h_bound) + bmax + ctx.q;
                worst = worst.max(pre);
                proven &= pre < ctx.max;
                h_bound = tanh_cap;
            }
            LayerBound {
                terms,
                w1,
                pre_act: worst,
                out: tanh_cap,
                proven,
            }
        }
        LayerKind::Inception(p) => {
            let ci = in_shape.channels;
            let w1_end = p.c1x1 * ci;
            let w3_end = w1_end + p.c3x3 * ci * 9;
            let w5_end = w3_end + p.c5x5 * ci * 25;
            let banks = [
                (&w[..w1_end.min(w.len())], &b[..p.c1x1.min(b.len())], ci),
                (
                    &w[w1_end.min(w.len())..w3_end.min(w.len())],
                    &b[p.c1x1.min(b.len())..(p.c1x1 + p.c3x3).min(b.len())],
                    ci * 9,
                ),
                (
                    &w[w3_end.min(w.len())..w5_end.min(w.len())],
                    &b[(p.c1x1 + p.c3x3).min(b.len())..(p.c1x1 + p.c3x3 + p.c5x5).min(b.len())],
                    ci * 25,
                ),
                (
                    &w[w5_end.min(w.len())..],
                    &b[(p.c1x1 + p.c3x3 + p.c5x5).min(b.len())..],
                    ci,
                ),
            ];
            let mut out = LayerBound {
                terms: 0,
                w1: 0.0,
                pre_act: 0.0,
                out: 0.0,
                proven: true,
            };
            for (bw, bb, row) in banks {
                let bank = mac_bank(bw, bb, row, in_bound, ctx);
                out.terms = out.terms.max(bank.terms);
                out.w1 = out.w1.max(bank.w1);
                out.pre_act = out.pre_act.max(bank.pre_act);
                out.out = out.out.max(bank.out);
                out.proven &= bank.proven;
            }
            out
        }
        LayerKind::Activation(a) => match a {
            Activation::Relu | Activation::Identity => LayerBound::routing(in_bound),
            Activation::Sigmoid => LayerBound::routing(lut_abs_max(ctx.luts, "sigmoid", 1.0)),
            Activation::Tanh => LayerBound::routing(lut_abs_max(ctx.luts, "tanh", 1.0)),
        },
        LayerKind::Pooling(p) => match p.method {
            deepburning_model::PoolMethod::Max => LayerBound::routing(in_bound),
            deepburning_model::PoolMethod::Average => {
                // The window sum resolves to the format *before* the
                // reciprocal multiply, so the sum itself must fit.
                let window = (p.kernel_size * p.kernel_size) as f64;
                let sum = window * in_bound + ctx.q;
                let recip = (1.0 / window + ctx.q).min(ctx.max);
                LayerBound {
                    terms: p.kernel_size * p.kernel_size,
                    w1: 0.0,
                    pre_act: sum,
                    out: (sum.min(ctx.max) * recip + ctx.q).min(ctx.max),
                    proven: sum < ctx.max,
                }
            }
        },
        LayerKind::Lrn(p) => {
            // Energy = Σ v² over the local window, resolved to the format
            // before indexing the factor LUT.
            let window = p.local_size.max(1) as f64;
            let energy = window * in_bound * in_bound + ctx.q;
            let factor = lut_abs_max(ctx.luts, &format!("lrn:{name}"), 1.0);
            LayerBound {
                terms: p.local_size,
                w1: 0.0,
                pre_act: energy,
                out: (in_bound * factor + ctx.q).min(ctx.max),
                proven: energy < ctx.max,
            }
        }
        LayerKind::Dropout { .. } | LayerKind::Memory { .. } => LayerBound::routing(in_bound),
        LayerKind::Concat => LayerBound::routing(in_bound),
        LayerKind::Eltwise => {
            let sum = sum_in_bound + ctx.q;
            LayerBound {
                terms: 0,
                w1: 0.0,
                pre_act: sum,
                out: sum.min(ctx.max),
                proven: sum < ctx.max,
            }
        }
        LayerKind::Associative { .. } => {
            // Table reads return stored (saturated) values; addressing is
            // not value arithmetic, so there is nothing to prove but the
            // output is bounded by the largest stored magnitude.
            let cap = bias_max(w, ctx.q, ctx.max).max(ctx.q);
            LayerBound {
                terms: 0,
                w1: 0.0,
                pre_act: cap,
                out: cap,
                proven: true,
            }
        }
        LayerKind::Classifier { .. } => LayerBound::unprovable(ctx.max),
    }
}

/// Runs the range analysis over the full layer graph.
///
/// Returns one [`RangeProof`] per non-input layer plus diagnostics:
/// `range/definite-overflow` (error) when a raw weight or bias is
/// unrepresentable in `fmt` — quantisation will silently saturate the
/// stored parameter — and `range/may-saturate` (info) when an
/// accumulator bound reaches the clamp, meaning the layer relies on
/// saturation arithmetic and cannot be chain-proven.
pub fn analyze_ranges(
    net: &Network,
    weights: &WeightSet,
    luts: Option<&LutImages>,
    fmt: QFormat,
    input_bound: f64,
) -> (Vec<RangeProof>, Vec<Diagnostic>) {
    let _span = deepburning_trace::span("lint", "lint.range");
    let ctx = Ctx {
        luts,
        q: fmt.resolution(),
        max: fmt.max_value(),
    };
    let shapes = match net.infer_shapes() {
        Ok(s) => s,
        Err(_) => return (Vec::new(), Vec::new()),
    };
    let empty: (Vec<f32>, Vec<f32>) = (Vec::new(), Vec::new());
    // Blob name → (bound on quantised magnitude, every producer proven).
    let mut blobs: BTreeMap<&str, (f64, bool)> = BTreeMap::new();
    let mut proofs = Vec::new();
    let mut diags = Vec::new();
    for layer in net.layers() {
        if let LayerKind::Input { .. } = layer.kind {
            for top in &layer.tops {
                blobs.insert(top, (input_bound.min(ctx.max), true));
            }
            continue;
        }
        let ins: Vec<(f64, bool)> = layer
            .bottoms
            .iter()
            .map(|b| blobs.get(b.as_str()).copied().unwrap_or((ctx.max, false)))
            .collect();
        let in_bound = ins.iter().map(|(b, _)| *b).fold(0.0f64, f64::max);
        let sum_in = ins.iter().map(|(b, _)| *b).sum::<f64>();
        let upstream_proven = ins.iter().all(|(_, p)| *p);
        let in_shape = layer
            .bottoms
            .first()
            .and_then(|b| shapes.get(b).copied())
            .unwrap_or(Shape::vector(1));
        let (w, b) = weights
            .get(&layer.name)
            .map_or((&empty.0[..], &empty.1[..]), |lw| (&lw.w[..], &lw.b[..]));
        if let Some(bad) = w.iter().chain(b).find(|v| f64::from(v.abs()) >= ctx.max) {
            diags.push(
                Diagnostic::new(
                    "range/definite-overflow",
                    Severity::Error,
                    format!(
                        "parameter {bad} of layer `{}` is unrepresentable in {fmt} \
                         (max {:.6}); quantisation saturates the stored value",
                        layer.name, ctx.max
                    ),
                )
                .in_module(layer.name.clone())
                .suggest("widen the integer field of the QFormat or rescale the layer"),
            );
        }
        let bound = layer_bound(layer, w, b, in_shape, in_bound, sum_in, &ctx);
        let chain = bound.proven && upstream_proven;
        if !bound.proven && bound.terms > 0 {
            diags.push(
                Diagnostic::new(
                    "range/may-saturate",
                    Severity::Info,
                    format!(
                        "layer `{}` accumulator bound {:.1} reaches the {fmt} clamp \
                         ({:.1}); saturation arithmetic is load-bearing and the \
                         layer cannot be statically proven overflow-free",
                        layer.name, bound.pre_act, ctx.max
                    ),
                )
                .in_module(layer.name.clone()),
            );
        }
        for top in &layer.tops {
            blobs.insert(top, (bound.out, chain));
        }
        proofs.push(RangeProof {
            layer: layer.name.clone(),
            kind: layer.kind.type_name().to_string(),
            terms: bound.terms,
            w1: bound.w1,
            in_bound,
            pre_act_bound: bound.pre_act,
            out_bound: bound.out,
            proven: bound.proven,
            chain_proven: chain,
        });
    }
    (proofs, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{FullParam, Layer};
    use deepburning_tensor::LayerWeights;

    fn fc_net(bias: f32) -> (Network, WeightSet) {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 1, 2, 2),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam {
                        num_output: 2,
                        connectivity_permille: 1000,
                    }),
                    "data",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let mut ws = WeightSet::new();
        ws.insert(
            "fc",
            LayerWeights {
                w: vec![0.5, -0.5, 0.25, 0.25, 0.1, 0.1, 0.1, 0.1],
                b: vec![bias, 0.0],
            },
        );
        (net, ws)
    }

    /// Injected defect: a bias of 100.0 is unrepresentable in Q4.12
    /// (max ≈ 8) — `range/definite-overflow` must fire at error severity.
    #[test]
    fn overflowing_q4_12_layer_fires() {
        let (net, ws) = fc_net(100.0);
        let fmt = QFormat::new(16, 12).expect("Q4.12");
        let (proofs, diags) = analyze_ranges(&net, &ws, None, fmt, 1.0);
        let hit = diags
            .iter()
            .find(|d| d.rule == "range/definite-overflow")
            .expect("definite overflow fires");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(hit.module.as_deref(), Some("fc"));
        let p = proofs.iter().find(|p| p.layer == "fc").expect("proof row");
        assert!(!p.chain_proven || p.pre_act_bound < fmt.max_value());
    }

    /// A small FC layer with mild weights is chain-proven in Q8.8.
    #[test]
    fn small_fc_is_chain_proven() {
        let (net, ws) = fc_net(0.5);
        let (proofs, diags) = analyze_ranges(&net, &ws, None, QFormat::Q8_8, 1.0);
        assert!(diags.is_empty(), "{diags:?}");
        let p = proofs.iter().find(|p| p.layer == "fc").expect("proof row");
        assert!(p.proven && p.chain_proven, "{p:?}");
        // W1 row = |0.5|+|-0.5|+|0.25|+|0.25| = 1.5 plus quantisation slack.
        assert!(p.w1 >= 1.5 && p.w1 < 1.6, "{}", p.w1);
        assert!(p.pre_act_bound < 2.2);
    }

    /// The bound is monotone: a huge fan-in with uniform weights exceeds
    /// the Q8.8 clamp and the layer is reported, at info severity, as
    /// relying on saturation.
    #[test]
    fn oversized_fanin_is_not_proven() {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 8, 16, 16),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam {
                        num_output: 4,
                        connectivity_permille: 1000,
                    }),
                    "data",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let n = 8 * 16 * 16;
        let mut ws = WeightSet::new();
        ws.insert(
            "fc",
            LayerWeights {
                w: vec![0.25; n * 4],
                b: vec![0.0; 4],
            },
        );
        let (proofs, diags) = analyze_ranges(&net, &ws, None, QFormat::Q8_8, 1.0);
        let p = proofs.iter().find(|p| p.layer == "fc").expect("proof row");
        assert!(!p.proven, "W1 ≈ 512 must exceed 127.996: {p:?}");
        assert!(diags.iter().any(|d| d.rule == "range/may-saturate"));
    }
}
