//! Pass 1: structural RTL lint.
//!
//! Wraps the elaboration-grade lint in `deepburning-verilog`
//! ([`deepburning_verilog::lint_design`]) and lifts each finding into the
//! analyzer's diagnostic schema under the `structural/` rule namespace,
//! attaching a suggested fix per rule.

use crate::{Diagnostic, Severity};
use deepburning_verilog::{lint_design, Design};

/// Suggested fix per structural rule, where a generic one makes sense.
fn suggestion(rule: &str) -> Option<&'static str> {
    match rule {
        "undriven-net" | "undriven-output" => {
            Some("drive the net with an assign or always block, or delete it")
        }
        "unused-net" => Some("delete the declaration or connect a reader"),
        "multi-driver" | "mixed-driver" => {
            Some("merge the drivers into a single assign or always block")
        }
        "width-mismatch" | "port-width-mismatch" => {
            Some("make both sides the same width, or slice/zero-extend explicitly")
        }
        "assign-to-reg" => {
            Some("declare the target as a wire, or move the assignment into an always block")
        }
        "proc-assign-to-wire" => Some("declare the target as a reg"),
        "unconnected-input" => Some("bind the port or tie it to a literal"),
        "undeclared-id" => Some("declare the signal before use"),
        _ => None,
    }
}

/// Runs the structural lint over every module of the design.
pub fn run(design: &Design) -> Vec<Diagnostic> {
    lint_design(design)
        .issues
        .into_iter()
        .map(|i| {
            let mut d = Diagnostic::new(
                format!("structural/{}", i.rule),
                Severity::from(i.severity),
                i.message,
            )
            .in_module(i.module);
            if let Some(sig) = i.signal {
                d = d.on_signal(sig);
            }
            if let Some(fix) = suggestion(i.rule) {
                d = d.suggest(fix);
            }
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_verilog::{Design, Expr, Item, NetDecl, Port, VModule};

    /// Injected defect: a wire that is read but never driven must raise
    /// `structural/undriven-net`.
    #[test]
    fn undriven_net_fires() {
        let mut m = VModule::new("broken");
        m.port(Port::output("q", 8));
        m.item(Item::Net(NetDecl::wire("ghost", 8)));
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("ghost"),
        });
        let diags = run(&Design::new(m));
        assert!(
            diags.iter().any(|d| d.rule == "structural/undriven-net"
                && d.severity == Severity::Error
                && d.signal.as_deref() == Some("ghost")),
            "{diags:?}"
        );
    }

    /// Injected defect: assigning a 16-bit source to an 8-bit sink must
    /// raise `structural/width-mismatch` and call out the truncation.
    #[test]
    fn width_truncation_fires() {
        let mut m = VModule::new("broken");
        m.port(Port::input("a", 16));
        m.port(Port::output("q", 8));
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("a"),
        });
        let diags = run(&Design::new(m));
        let hit = diags
            .iter()
            .find(|d| d.rule == "structural/width-mismatch")
            .expect("width-mismatch fires");
        assert!(hit.message.contains("truncation"), "{}", hit.message);
        assert!(hit.suggestion.is_some());
    }

    /// Injected defect: two continuous assignments to the same wire must
    /// raise `structural/multi-driver`.
    #[test]
    fn multi_driver_fires() {
        let mut m = VModule::new("broken");
        m.port(Port::input("a", 1));
        m.port(Port::output("q", 1));
        for _ in 0..2 {
            m.item(Item::Assign {
                lhs: Expr::id("q"),
                rhs: Expr::id("a"),
            });
        }
        let diags = run(&Design::new(m));
        assert!(
            diags.iter().any(|d| d.rule == "structural/multi-driver"),
            "{diags:?}"
        );
    }
}
