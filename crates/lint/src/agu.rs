//! Pass 5: AGU bounds proof.
//!
//! Every AGU program is an affine address generator: `start + offset +
//! y·y_stride + x·x_stride` over a rectangular `x_len × y_len` trip
//! space. Because strides are non-negative, the stream's extent is just
//! the first and last corner — no replay needed. The pass proves, for
//! every fold slice of every phase:
//!
//! * **Main AGU** (DRAM side): the whole stream stays inside the memory
//!   map segment it starts in (`agu/oob-segment`, error — an
//!   out-of-bounds burst would read another layer's weights or clobber
//!   the spill region).
//! * **Data/weight AGUs** (on-chip side): streams that exceed the
//!   physical buffer depth are reported — a spatial window that cannot
//!   fit is a tiling bug (`agu/window-exceeds-buffer`, warning), while a
//!   long linear sweep wraps by design under the streaming double-buffer
//!   discipline (`agu/buffer-wrap`, info; the RTL truncates addresses to
//!   the buffer's address width).

use crate::{Diagnostic, Severity};
use deepburning_compiler::{CompiledNetwork, Segment};
use deepburning_components::AguPattern;
use std::collections::BTreeSet;

/// Inclusive `[lo, hi]` address extent of a pattern.
fn extent(p: &AguPattern) -> (u128, u128) {
    let lo = u128::from(p.start) + u128::from(p.offset);
    let hi = lo
        + u128::from(p.y_len.max(1) - 1) * u128::from(p.y_stride)
        + u128::from(p.x_len.max(1) - 1) * u128::from(p.x_stride);
    (lo, hi)
}

fn segment_of(segments: &[Segment], addr: u128) -> Option<&Segment> {
    segments
        .iter()
        .find(|s| addr >= u128::from(s.offset) && addr < u128::from(s.offset + s.len_words))
}

fn check_main(
    phase: usize,
    layer: &str,
    idx: usize,
    p: &AguPattern,
    segments: &[Segment],
) -> Option<Diagnostic> {
    let (lo, hi) = extent(p);
    let Some(seg) = segment_of(segments, lo) else {
        return Some(
            Diagnostic::new(
                "agu/oob-segment",
                Severity::Error,
                format!(
                    "phase {phase} ({layer}): main pattern {idx} starts at word {lo}, \
                     outside every DRAM segment"
                ),
            )
            .in_module(layer)
            .on_signal(format!("main[{idx}]"))
            .suggest("fix the segment base in the memory map or the pattern start"),
        );
    };
    let end = u128::from(seg.offset + seg.len_words);
    if hi >= end {
        return Some(
            Diagnostic::new(
                "agu/oob-segment",
                Severity::Error,
                format!(
                    "phase {phase} ({layer}): main pattern {idx} reaches word {hi}, \
                     beyond segment `{}` [{}, {end})",
                    seg.name, seg.offset
                ),
            )
            .in_module(layer)
            .on_signal(format!("main[{idx}]"))
            .suggest("clamp the fold slice so offset + extent stays inside the segment"),
        );
    }
    None
}

fn check_buffer(
    phase: usize,
    layer: &str,
    class: &str,
    idx: usize,
    p: &AguPattern,
    depth: u64,
) -> Option<Diagnostic> {
    let (_, hi) = extent(p);
    if hi < u128::from(depth) {
        return None;
    }
    let spatial = p.y_len > 1 && p.y_stride > 1;
    let (rule, severity, verdict) = if spatial {
        (
            "agu/window-exceeds-buffer",
            Severity::Warning,
            "spatial window does not fit the buffer — tiling must shrink the window",
        )
    } else {
        (
            "agu/buffer-wrap",
            Severity::Info,
            "linear stream wraps under streaming double-buffer semantics (addresses truncate)",
        )
    };
    Some(
        Diagnostic::new(
            rule,
            severity,
            format!(
                "phase {phase} ({layer}): {class} pattern {idx} reaches word {hi} of a \
                 {depth}-word buffer; {verdict}"
            ),
        )
        .in_module(layer)
        .on_signal(format!("{class}[{idx}]")),
    )
}

/// Statically checks every AGU program of the compiled network.
pub fn run(compiled: &CompiledNetwork) -> Vec<Diagnostic> {
    let _span = deepburning_trace::span("lint", "lint.agu");
    let word = compiled.config.word_bytes().max(1);
    let fbuf_depth = (compiled.config.feature_buffer_bytes / word).max(1);
    let wbuf_depth = (compiled.config.weight_buffer_bytes / word).max(1);
    let segments = &compiled.memory_map.segments;
    let mut diags = Vec::new();
    // A layer folded over thousands of phases repeats the same on-chip
    // stream shape every fold; one buffer finding per (rule, layer,
    // stream) carries all the information.
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut push_buffer = |diags: &mut Vec<Diagnostic>, d: Option<Diagnostic>| {
        if let Some(d) = d {
            let key = (
                d.rule.clone(),
                d.module.clone().unwrap_or_default(),
                d.signal.clone().unwrap_or_default(),
            );
            if seen.insert(key) {
                diags.push(d);
            }
        }
    };
    for prog in &compiled.agu_programs {
        let layer = compiled
            .folding
            .phases
            .iter()
            .find(|ph| ph.id == prog.phase)
            .map_or("?", |ph| ph.layer.as_str());
        for (i, p) in prog.main.iter().enumerate() {
            diags.extend(check_main(prog.phase, layer, i, p, segments));
        }
        for (i, p) in prog.data.iter().enumerate() {
            let d = check_buffer(prog.phase, layer, "data", i, p, fbuf_depth);
            push_buffer(&mut diags, d);
        }
        for (i, p) in prog.weight.iter().enumerate() {
            let d = check_buffer(prog.phase, layer, "weight", i, p, wbuf_depth);
            push_buffer(&mut diags, d);
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(start: u64, offset: u64, x_len: u32, y_len: u32, xs: u64, ys: u64) -> AguPattern {
        AguPattern {
            start,
            offset,
            x_len,
            y_len,
            x_stride: xs,
            y_stride: ys,
        }
    }

    #[test]
    fn extent_covers_both_loop_dimensions() {
        let p = pattern(100, 4, 3, 2, 1, 16);
        assert_eq!(extent(&p), (104, 104 + 16 + 2));
        let lin = AguPattern::linear(10, 5);
        assert_eq!(extent(&lin), (10, 14));
    }

    #[test]
    fn in_segment_pattern_is_clean() {
        let segs = vec![Segment {
            name: "input".into(),
            offset: 0,
            len_words: 64,
            kind: deepburning_compiler::SegmentKind::Input,
        }];
        assert!(check_main(0, "l", 0, &pattern(0, 0, 64, 1, 1, 0), &segs).is_none());
    }

    /// Injected defect: an out-of-bounds AGU program — the pattern's last
    /// address crosses its segment end — must raise `agu/oob-segment`.
    #[test]
    fn oob_pattern_fires() {
        let segs = vec![Segment {
            name: "w".into(),
            offset: 32,
            len_words: 16,
            kind: deepburning_compiler::SegmentKind::Weights,
        }];
        let d =
            check_main(3, "fc", 1, &pattern(32, 8, 16, 1, 1, 0), &segs).expect("overrun detected");
        assert_eq!(d.rule, "agu/oob-segment");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("segment `w`"), "{}", d.message);
        // A pattern starting outside every segment also fires.
        let d2 = check_main(3, "fc", 0, &pattern(1000, 0, 4, 1, 1, 0), &segs)
            .expect("stray start detected");
        assert_eq!(d2.rule, "agu/oob-segment");
    }

    #[test]
    fn buffer_tiers_split_window_and_wrap() {
        // Spatial window beyond the buffer: warning.
        let d = check_buffer(0, "conv", "data", 0, &pattern(0, 0, 5, 5, 1, 64), 128)
            .expect("window flagged");
        assert_eq!(d.rule, "agu/window-exceeds-buffer");
        assert_eq!(d.severity, Severity::Warning);
        // Long linear sweep: info only.
        let d = check_buffer(0, "fc", "data", 0, &AguPattern::linear(0, 4096), 1024)
            .expect("wrap noted");
        assert_eq!(d.rule, "agu/buffer-wrap");
        assert_eq!(d.severity, Severity::Info);
        // Fits: clean.
        assert!(check_buffer(0, "fc", "data", 0, &AguPattern::linear(0, 64), 1024).is_none());
    }
}
