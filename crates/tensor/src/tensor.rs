//! A minimal f32 tensor in `channels × height × width` layout.

use deepburning_model::Shape;
use std::fmt;

/// A dense f32 tensor with [`Shape`] semantics matching the model IR.
///
/// Storage is row-major within a channel: `data[c*H*W + y*W + x]`.
///
/// # Examples
///
/// ```
/// use deepburning_model::Shape;
/// use deepburning_tensor::Tensor;
///
/// let mut t = Tensor::zeros(Shape::new(2, 3, 3));
/// t.set(1, 2, 2, 7.0);
/// assert_eq!(t.get(1, 2, 2), 7.0);
/// assert_eq!(t.as_slice().len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.elements()],
        }
    }

    /// Builds a tensor by evaluating `f(c, y, x)`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.elements());
        for c in 0..shape.channels {
            for y in 0..shape.height {
                for x in 0..shape.width {
                    data.push(f(c, y, x));
                }
            }
        }
        Tensor { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.elements()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.elements(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A flat vector tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Tensor {
            shape: Shape::vector(values.len()),
            data: values.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Flat read-only view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    fn offset(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.shape.channels && y < self.shape.height && x < self.shape.width);
        (c * self.shape.height + y) * self.shape.width + x
    }

    /// Element read.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the coordinates are out of range.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.offset(c, y, x)]
    }

    /// Element read with zero padding outside the spatial extent.
    #[inline]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y >= self.shape.height as isize || x >= self.shape.width as isize {
            0.0
        } else {
            self.get(c, y as usize, x as usize)
        }
    }

    /// Element write.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the coordinates are out of range.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.offset(c, y, x);
        self.data[i] = v;
    }

    /// Adds to an element.
    #[inline]
    pub fn add_at(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.offset(c, y, x);
        self.data[i] += v;
    }

    /// Reinterprets as a flat vector without copying.
    pub fn flatten(mut self) -> Tensor {
        self.shape = Shape::vector(self.shape.elements());
        self
    }

    /// Index of the maximum element (ties resolve to the first).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}]", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_chw() {
        let t = Tensor::from_fn(Shape::new(2, 2, 3), |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.as_slice()[0], 0.0);
        assert_eq!(t.as_slice()[3], 10.0); // c0 y1 x0
        assert_eq!(t.as_slice()[6], 100.0); // c1 y0 x0
        assert_eq!(t.get(1, 1, 2), 112.0);
    }

    #[test]
    fn padded_reads() {
        let t = Tensor::from_fn(Shape::new(1, 2, 2), |_, y, x| (y * 2 + x) as f32 + 1.0);
        assert_eq!(t.get_padded(0, -1, 0), 0.0);
        assert_eq!(t.get_padded(0, 0, 2), 0.0);
        assert_eq!(t.get_padded(0, 1, 1), 4.0);
    }

    #[test]
    fn argmax_and_mean() {
        let t = Tensor::vector(&[0.1, 0.9, 0.5]);
        assert_eq!(t.argmax(), 1);
        assert!((t.mean() - 0.5).abs() < 1e-6);
        assert_eq!(Tensor::vector(&[-3.0, 2.0]).max_abs(), 3.0);
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::from_fn(Shape::new(2, 2, 2), |c, y, x| (c + y + x) as f32);
        let flat = t.clone().flatten();
        assert_eq!(flat.shape(), Shape::vector(8));
        assert_eq!(flat.as_slice(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(Shape::new(1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn map_applies() {
        let t = Tensor::vector(&[1.0, -2.0]).map(f32::abs);
        assert_eq!(t.as_slice(), &[1.0, 2.0]);
    }
}
