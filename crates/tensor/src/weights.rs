//! Weight storage and initialisation for the reference engine.

use deepburning_model::{LayerKind, Network, NetworkError, Shape};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Weights of one layer: a flat kernel/weight buffer plus biases.
///
/// Layouts by layer kind:
/// * convolution — `w[co][ci/group][ky][kx]`, `b[co]`
/// * full connection — `w[out][in]`, `b[out]`
/// * recurrent — `w[out][in + out]` (input weights then hidden weights), `b[out]`
/// * associative — `w[table_size]`, no bias
/// * inception — branch kernels concatenated in 1×1, 3×3, 5×5, pool-proj
///   order, `b[total_output]`
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayerWeights {
    /// Kernel / weight matrix, flat.
    pub w: Vec<f32>,
    /// Bias vector.
    pub b: Vec<f32>,
}

impl LayerWeights {
    /// Total parameter count.
    pub fn len(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// True when the layer holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty() && self.b.is_empty()
    }
}

/// All weights of a network, keyed by layer name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightSet {
    map: BTreeMap<String, LayerWeights>,
}

/// Weight initialisation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(±sqrt(6/(fan_in+fan_out)))`.
    #[default]
    Xavier,
    /// Uniform in `[-scale, scale]` — the "structured pseudo-random"
    /// weights used for the untrained AlexNet/NiN accuracy runs.
    Uniform(f32),
    /// All zeros (useful in tests).
    Zero,
}

/// Error raised when weights don't exist or have the wrong size.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightError {
    /// Layer whose weights are wrong.
    pub layer: String,
    /// Explanation.
    pub detail: String,
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer `{}`: {}", self.layer, self.detail)
    }
}

impl std::error::Error for WeightError {}

/// `(kernel elements, bias elements)` a layer requires, given its input.
pub fn expected_sizes(kind: &LayerKind, input: Shape) -> (usize, usize) {
    match kind {
        LayerKind::Convolution(p) => (
            p.num_output * (input.channels / p.group) * p.kernel_size * p.kernel_size,
            p.num_output,
        ),
        LayerKind::FullConnection(p) => (p.num_output * input.elements(), p.num_output),
        LayerKind::Recurrent { num_output, .. } => {
            (num_output * (input.elements() + num_output), *num_output)
        }
        LayerKind::Associative { table_size, .. } => (*table_size, 0),
        LayerKind::Inception(p) => {
            let ci = input.channels;
            (
                p.c1x1 * ci + p.c3x3 * ci * 9 + p.c5x5 * ci * 25 + p.cpool * ci,
                p.total_output(),
            )
        }
        _ => (0, 0),
    }
}

impl WeightSet {
    /// An empty weight set.
    pub fn new() -> Self {
        WeightSet::default()
    }

    /// Initialises weights for every parametric layer of `net`.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures from the network.
    pub fn init<R: Rng>(net: &Network, init: Init, rng: &mut R) -> Result<Self, NetworkError> {
        let shapes = net.infer_shapes()?;
        let mut map = BTreeMap::new();
        for layer in net.layers() {
            if !layer.kind.has_weights() {
                continue;
            }
            let input = layer
                .bottoms
                .first()
                .map(|b| shapes[b])
                .unwrap_or(Shape::vector(0));
            let (wn, bn) = expected_sizes(&layer.kind, input);
            let fan_in = if wn == 0 { 1 } else { wn / bn.max(1) };
            let fan_out = bn.max(1);
            let scale = match init {
                Init::Xavier => (6.0 / (fan_in + fan_out) as f32).sqrt(),
                Init::Uniform(s) => s,
                Init::Zero => 0.0,
            };
            let w = (0..wn)
                .map(|_| {
                    if scale == 0.0 {
                        0.0
                    } else {
                        rng.gen_range(-scale..=scale)
                    }
                })
                .collect();
            let b = vec![0.0; bn];
            map.insert(layer.name.clone(), LayerWeights { w, b });
        }
        Ok(WeightSet { map })
    }

    /// Inserts (or replaces) one layer's weights.
    pub fn insert(&mut self, layer: impl Into<String>, weights: LayerWeights) {
        self.map.insert(layer.into(), weights);
    }

    /// Reads one layer's weights.
    pub fn get(&self, layer: &str) -> Option<&LayerWeights> {
        self.map.get(layer)
    }

    /// Mutable access to one layer's weights.
    pub fn get_mut(&mut self, layer: &str) -> Option<&mut LayerWeights> {
        self.map.get_mut(layer)
    }

    /// Iterates `(layer name, weights)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LayerWeights)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total parameter count across all layers.
    pub fn parameter_count(&self) -> usize {
        self.map.values().map(LayerWeights::len).sum()
    }

    /// Checks that every parametric layer of `net` has correctly-sized
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns the first [`WeightError`] found.
    pub fn validate(&self, net: &Network) -> Result<(), WeightError> {
        let shapes = net.infer_shapes().map_err(|e| WeightError {
            layer: net.name().to_string(),
            detail: e.to_string(),
        })?;
        for layer in net.layers() {
            if !layer.kind.has_weights() {
                continue;
            }
            let input = layer
                .bottoms
                .first()
                .map(|b| shapes[b])
                .unwrap_or(Shape::vector(0));
            let (wn, bn) = expected_sizes(&layer.kind, input);
            let lw = self.get(&layer.name).ok_or_else(|| WeightError {
                layer: layer.name.clone(),
                detail: "weights missing".into(),
            })?;
            if lw.w.len() != wn || lw.b.len() != bn {
                return Err(WeightError {
                    layer: layer.name.clone(),
                    detail: format!(
                        "expected {wn} weights + {bn} biases, got {} + {}",
                        lw.w.len(),
                        lw.b.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{ConvParam, FullParam, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net() -> Network {
        Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 1, 8, 8),
                Layer::new(
                    "conv",
                    LayerKind::Convolution(ConvParam::new(4, 3, 1)),
                    "data",
                    "conv",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(10)),
                    "conv",
                    "fc",
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn init_sizes_match_expected() {
        let net = small_net();
        let mut rng = StdRng::seed_from_u64(1);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        assert_eq!(ws.get("conv").expect("conv").w.len(), 4 * 9);
        assert_eq!(ws.get("conv").expect("conv").b.len(), 4);
        // conv output is 4x6x6 = 144 inputs to fc
        assert_eq!(ws.get("fc").expect("fc").w.len(), 144 * 10);
        assert!(ws.validate(&net).is_ok());
    }

    #[test]
    fn validate_catches_missing_and_misshaped() {
        let net = small_net();
        let mut ws = WeightSet::new();
        assert!(ws.validate(&net).is_err());
        ws.insert(
            "conv",
            LayerWeights {
                w: vec![0.0; 5],
                b: vec![0.0; 4],
            },
        );
        let err = ws.validate(&net).unwrap_err();
        assert_eq!(err.layer, "conv");
        assert!(err.detail.contains("expected 36"));
    }

    #[test]
    fn deterministic_for_seed() {
        let net = small_net();
        let a = WeightSet::init(&net, Init::Xavier, &mut StdRng::seed_from_u64(7)).expect("init");
        let b = WeightSet::init(&net, Init::Xavier, &mut StdRng::seed_from_u64(7)).expect("init");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_init_is_zero() {
        let net = small_net();
        let ws = WeightSet::init(&net, Init::Zero, &mut StdRng::seed_from_u64(0)).expect("init");
        assert!(ws.get("fc").expect("fc").w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parameter_count_sums() {
        let net = small_net();
        let ws = WeightSet::init(&net, Init::Xavier, &mut StdRng::seed_from_u64(0)).expect("init");
        assert_eq!(ws.parameter_count(), 36 + 4 + 1440 + 10);
    }
}
