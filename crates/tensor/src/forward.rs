//! Reference (f32) forward propagation for every layer kind.
//!
//! This is the "software neural network executed on CPU" the paper uses as
//! the accuracy baseline, and the golden model the functional fixed-point
//! simulator is checked against.

use crate::tensor::Tensor;
use crate::weights::{LayerWeights, WeightSet};
use deepburning_model::{Activation, Layer, LayerKind, Network, PoolMethod, Shape};
use std::collections::BTreeMap;
use std::fmt;

/// Error raised during forward propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Layer where evaluation failed.
    pub layer: String,
    /// Explanation.
    pub detail: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluating `{}`: {}", self.layer, self.detail)
    }
}

impl std::error::Error for EvalError {}

fn err(layer: &str, detail: impl Into<String>) -> EvalError {
    EvalError {
        layer: layer.to_string(),
        detail: detail.into(),
    }
}

/// 2-D convolution (grouped, zero-padded).
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &Tensor,
    w: &[f32],
    b: &[f32],
    num_output: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    group: usize,
) -> Tensor {
    let ishape = input.shape();
    let ci = ishape.channels;
    let cig = ci / group;
    let cog = num_output / group;
    let oh = (ishape.height + 2 * pad - kernel) / stride + 1;
    let ow = (ishape.width + 2 * pad - kernel) / stride + 1;
    let mut out = Tensor::zeros(Shape::new(num_output, oh, ow));
    for co in 0..num_output {
        let g = co / cog;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b.get(co).copied().unwrap_or(0.0);
                for icg in 0..cig {
                    let ic = g * cig + icg;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            let wv = w[((co * cig + icg) * kernel + ky) * kernel + kx];
                            acc += wv * input.get_padded(ic, iy, ix);
                        }
                    }
                }
                out.set(co, oy, ox, acc);
            }
        }
    }
    out
}

/// Spatial pooling.
pub fn pool2d(input: &Tensor, method: PoolMethod, kernel: usize, stride: usize) -> Tensor {
    let ishape = input.shape();
    let oh = (ishape.height - kernel) / stride + 1;
    let ow = (ishape.width - kernel) / stride + 1;
    let mut out = Tensor::zeros(Shape::new(ishape.channels, oh, ow));
    for c in 0..ishape.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut agg = match method {
                    PoolMethod::Max => f32::NEG_INFINITY,
                    PoolMethod::Average => 0.0,
                };
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let v = input.get(c, oy * stride + ky, ox * stride + kx);
                        match method {
                            PoolMethod::Max => agg = agg.max(v),
                            PoolMethod::Average => agg += v,
                        }
                    }
                }
                if method == PoolMethod::Average {
                    agg /= (kernel * kernel) as f32;
                }
                out.set(c, oy, ox, agg);
            }
        }
    }
    out
}

/// Fully-connected layer `y = W·x + b`.
pub fn full_connection(input: &Tensor, w: &[f32], b: &[f32], num_output: usize) -> Tensor {
    let x = input.as_slice();
    let n = x.len();
    let mut out = vec![0.0f32; num_output];
    for (o, out_v) in out.iter_mut().enumerate() {
        let row = &w[o * n..(o + 1) * n];
        let mut acc = b.get(o).copied().unwrap_or(0.0);
        for (xv, wv) in x.iter().zip(row) {
            acc += xv * wv;
        }
        *out_v = acc;
    }
    Tensor::vector(&out)
}

/// Element-wise activation.
pub fn activate(input: &Tensor, act: Activation) -> Tensor {
    input.map(|v| act.eval(v as f64) as f32)
}

/// Across-channel local response normalisation (AlexNet formula).
pub fn lrn(input: &Tensor, local_size: usize, alpha: f64, beta: f64) -> Tensor {
    let s = input.shape();
    let half = local_size / 2;
    Tensor::from_fn(s, |c, y, x| {
        let lo = c.saturating_sub(half);
        let hi = (c + half).min(s.channels - 1);
        let mut sum_sq = 0.0f64;
        for cc in lo..=hi {
            let v = input.get(cc, y, x) as f64;
            sum_sq += v * v;
        }
        let denom = (1.0 + alpha / local_size as f64 * sum_sq).powf(beta);
        (input.get(c, y, x) as f64 / denom) as f32
    })
}

/// Recurrent layer: `h ← tanh(Wx·x + Wh·h + b)` iterated `steps` times from
/// `h = 0`, with the feedback routed through the connection box.
pub fn recurrent(input: &Tensor, w: &[f32], b: &[f32], num_output: usize, steps: usize) -> Tensor {
    let x = input.as_slice();
    let n_in = x.len();
    let mut h = vec![0.0f32; num_output];
    for _ in 0..steps.max(1) {
        let mut next = vec![0.0f32; num_output];
        for (o, next_v) in next.iter_mut().enumerate() {
            let row = &w[o * (n_in + num_output)..(o + 1) * (n_in + num_output)];
            let mut acc = b.get(o).copied().unwrap_or(0.0);
            for (xv, wv) in x.iter().zip(&row[..n_in]) {
                acc += xv * wv;
            }
            for (hv, wv) in h.iter().zip(&row[n_in..]) {
                acc += hv * wv;
            }
            *next_v = acc.tanh();
        }
        h = next;
    }
    Tensor::vector(&h)
}

/// Deterministic CMAC cell index for input `x`, cell slot `slot`.
///
/// Quantises each input dimension to a grid, offsets it per slot (the
/// classic CMAC overlapping-tiling scheme) and hashes into the table.
pub fn cmac_index(x: &[f32], slot: usize, active_cells: usize, table_size: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in x {
        let q = ((v * active_cells as f32).floor() as i64 + slot as i64)
            .div_euclid(active_cells as i64);
        h ^= q as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= slot as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    (h % table_size as u64) as usize
}

/// Associative (CMAC) layer: reads `active_cells` table cells selected by
/// the quantised input.
pub fn associative(
    input: &Tensor,
    table: &[f32],
    table_size: usize,
    active_cells: usize,
) -> Tensor {
    let x = input.as_slice();
    let out: Vec<f32> = (0..active_cells)
        .map(|slot| table[cmac_index(x, slot, active_cells, table_size)])
        .collect();
    Tensor::vector(&out)
}

/// Classification layer: indices of the `top_k` largest inputs, descending
/// (the K-sorter block's output).
pub fn classify(input: &Tensor, top_k: usize) -> Tensor {
    let mut indexed: Vec<(usize, f32)> = input.as_slice().iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let out: Vec<f32> = indexed.iter().take(top_k).map(|(i, _)| *i as f32).collect();
    Tensor::vector(&out)
}

/// Inception block: 1×1, 3×3 (pad 1), 5×5 (pad 2) convolutions plus a 3×3
/// max-pool → 1×1 projection, concatenated over channels.
pub fn inception(
    input: &Tensor,
    weights: &LayerWeights,
    c1x1: usize,
    c3x3: usize,
    c5x5: usize,
    cpool: usize,
) -> Tensor {
    let ci = input.shape().channels;
    let (h, w) = (input.shape().height, input.shape().width);
    let w1_end = c1x1 * ci;
    let w3_end = w1_end + c3x3 * ci * 9;
    let w5_end = w3_end + c5x5 * ci * 25;
    let b = &weights.b;
    let b1 = &b[..c1x1];
    let b3 = &b[c1x1..c1x1 + c3x3];
    let b5 = &b[c1x1 + c3x3..c1x1 + c3x3 + c5x5];
    let bp = &b[c1x1 + c3x3 + c5x5..];
    let o1 = conv2d(input, &weights.w[..w1_end], b1, c1x1, 1, 1, 0, 1);
    let o3 = conv2d(input, &weights.w[w1_end..w3_end], b3, c3x3, 3, 1, 1, 1);
    let o5 = conv2d(input, &weights.w[w3_end..w5_end], b5, c5x5, 5, 1, 2, 1);
    // Pool branch: same-extent 3x3 max pool (stride 1, pad 1 emulated by
    // clamped window) then 1x1 projection.
    let pooled = Tensor::from_fn(input.shape(), |c, y, x| {
        let mut m = f32::NEG_INFINITY;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                let yy = y as isize + dy;
                let xx = x as isize + dx;
                if yy >= 0 && xx >= 0 && (yy as usize) < h && (xx as usize) < w {
                    m = m.max(input.get(c, yy as usize, xx as usize));
                }
            }
        }
        m
    });
    let op = conv2d(&pooled, &weights.w[w5_end..], bp, cpool, 1, 1, 0, 1);
    concat(&[&o1, &o3, &o5, &op])
}

/// Channel-wise concatenation.
pub fn concat(inputs: &[&Tensor]) -> Tensor {
    let (h, w) = (inputs[0].shape().height, inputs[0].shape().width);
    let total: usize = inputs.iter().map(|t| t.shape().channels).sum();
    let mut out = Tensor::zeros(Shape::new(total, h, w));
    let mut base = 0;
    for t in inputs {
        for c in 0..t.shape().channels {
            for y in 0..h {
                for x in 0..w {
                    out.set(base + c, y, x, t.get(c, y, x));
                }
            }
        }
        base += t.shape().channels;
    }
    out
}

/// Evaluates one layer on resolved inputs.
///
/// # Errors
///
/// Returns [`EvalError`] if weights are missing/misshaped or inputs are
/// incompatible.
pub fn eval_layer(
    layer: &Layer,
    inputs: &[&Tensor],
    weights: &WeightSet,
) -> Result<Tensor, EvalError> {
    let input = || -> Result<&Tensor, EvalError> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| err(&layer.name, "no input blob"))
    };
    let lw = || -> Result<&LayerWeights, EvalError> {
        weights
            .get(&layer.name)
            .ok_or_else(|| err(&layer.name, "weights missing"))
    };
    match &layer.kind {
        LayerKind::Input { .. } => Ok(input()?.clone()),
        LayerKind::Convolution(p) => {
            let lw = lw()?;
            Ok(conv2d(
                input()?,
                &lw.w,
                &lw.b,
                p.num_output,
                p.kernel_size,
                p.stride,
                p.pad,
                p.group,
            ))
        }
        LayerKind::Pooling(p) => Ok(pool2d(input()?, p.method, p.kernel_size, p.stride)),
        LayerKind::FullConnection(p) => {
            let lw = lw()?;
            let x = input()?;
            if lw.w.len() != p.num_output * x.shape().elements() {
                return Err(err(
                    &layer.name,
                    format!(
                        "weight matrix is {} elements, need {}",
                        lw.w.len(),
                        p.num_output * x.shape().elements()
                    ),
                ));
            }
            Ok(full_connection(x, &lw.w, &lw.b, p.num_output))
        }
        LayerKind::Activation(a) => Ok(activate(input()?, *a)),
        LayerKind::Lrn(p) => Ok(lrn(input()?, p.local_size, p.alpha, p.beta)),
        LayerKind::Dropout { .. } => Ok(input()?.clone()), // inference: identity
        LayerKind::Recurrent { num_output, steps } => {
            let lw = lw()?;
            Ok(recurrent(input()?, &lw.w, &lw.b, *num_output, *steps))
        }
        LayerKind::Associative {
            table_size,
            active_cells,
        } => {
            let lw = lw()?;
            Ok(associative(input()?, &lw.w, *table_size, *active_cells))
        }
        LayerKind::Memory { .. } => Ok(input()?.clone()),
        LayerKind::Classifier { top_k } => Ok(classify(input()?, *top_k)),
        LayerKind::Inception(p) => {
            let lw = lw()?;
            Ok(inception(input()?, lw, p.c1x1, p.c3x3, p.c5x5, p.cpool))
        }
        LayerKind::Concat => {
            if inputs.is_empty() {
                return Err(err(&layer.name, "concat needs inputs"));
            }
            Ok(concat(inputs))
        }
        LayerKind::Eltwise => {
            let first = input()?.clone();
            let mut out = first;
            for t in &inputs[1..] {
                if t.shape() != out.shape() {
                    return Err(err(&layer.name, "eltwise shape mismatch"));
                }
                for (o, v) in out.as_mut_slice().iter_mut().zip(t.as_slice()) {
                    *o += v;
                }
            }
            Ok(out)
        }
    }
}

/// Runs a full forward pass, returning every blob value.
///
/// # Errors
///
/// Returns [`EvalError`] if the input shape mismatches the network or any
/// layer fails to evaluate.
pub fn forward_all(
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
) -> Result<BTreeMap<String, Tensor>, EvalError> {
    if input.shape() != net.input_shape() {
        return Err(err(
            "input",
            format!(
                "input shape {} does not match network input {}",
                input.shape(),
                net.input_shape()
            ),
        ));
    }
    let mut blobs: BTreeMap<String, Tensor> = BTreeMap::new();
    for layer in net.layers() {
        let out = if matches!(layer.kind, LayerKind::Input { .. }) {
            input.clone()
        } else {
            let ins: Vec<&Tensor> = layer
                .bottoms
                .iter()
                .map(|b| {
                    blobs
                        .get(b)
                        .ok_or_else(|| err(&layer.name, format!("blob `{b}` not computed")))
                })
                .collect::<Result<_, _>>()?;
            // FC consumes a flattened view of volumes.
            let flat;
            let ins = if matches!(
                layer.kind,
                LayerKind::FullConnection(_) | LayerKind::Recurrent { .. }
            ) && !ins.is_empty()
                && !ins[0].shape().is_vector()
            {
                flat = ins[0].clone().flatten();
                vec![&flat]
            } else {
                ins
            };
            eval_layer(layer, &ins, weights)?
        };
        for top in &layer.tops {
            blobs.insert(top.clone(), out.clone());
        }
    }
    Ok(blobs)
}

/// Runs a forward pass and returns the final output blob.
///
/// # Errors
///
/// See [`forward_all`].
pub fn forward(net: &Network, weights: &WeightSet, input: &Tensor) -> Result<Tensor, EvalError> {
    let blobs = forward_all(net, weights, input)?;
    let outs = net.output_blobs();
    let last = outs
        .last()
        .ok_or_else(|| err("network", "no output blob"))?;
    Ok(blobs[last].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{ConvParam, FullParam, Layer, PoolParam};

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let input = Tensor::from_fn(Shape::new(1, 3, 3), |_, y, x| (y * 3 + x) as f32);
        let out = conv2d(&input, &[1.0], &[0.0], 1, 1, 1, 0, 1);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 kernel of ones -> sum of all elements.
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv2d(&input, &[1.0; 4], &[0.5], 1, 2, 1, 0, 1);
        assert_eq!(out.as_slice(), &[10.5]);
    }

    #[test]
    fn conv_padding_extends() {
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv2d(&input, &[1.0; 9], &[0.0], 1, 3, 1, 1, 1);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        // center of padded conv at (0,0) covers the whole input
        assert_eq!(out.get(0, 0, 0), 10.0);
    }

    #[test]
    fn grouped_conv_blocks_cross_talk() {
        // 2 input channels, 2 outputs, group 2: each output sees one input.
        let input = Tensor::from_vec(Shape::new(2, 1, 1), vec![5.0, 7.0]);
        let out = conv2d(&input, &[1.0, 1.0], &[0.0, 0.0], 2, 1, 1, 0, 2);
        assert_eq!(out.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn max_and_avg_pool() {
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pool2d(&input, PoolMethod::Max, 2, 2).as_slice(), &[4.0]);
        assert_eq!(pool2d(&input, PoolMethod::Average, 2, 2).as_slice(), &[2.5]);
    }

    #[test]
    fn fc_known_values() {
        let x = Tensor::vector(&[1.0, 2.0]);
        // W = [[1,1],[2,-1]], b = [0, 1]
        let out = full_connection(&x, &[1.0, 1.0, 2.0, -1.0], &[0.0, 1.0], 2);
        assert_eq!(out.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn lrn_suppresses_large_neighbourhoods() {
        let quiet = Tensor::from_vec(Shape::new(3, 1, 1), vec![0.0, 1.0, 0.0]);
        let loud = Tensor::from_vec(Shape::new(3, 1, 1), vec![10.0, 1.0, 10.0]);
        let lq = lrn(&quiet, 3, 1.0, 0.75).get(1, 0, 0);
        let ll = lrn(&loud, 3, 1.0, 0.75).get(1, 0, 0);
        assert!(ll < lq, "loud {ll} should be suppressed below quiet {lq}");
    }

    #[test]
    fn recurrent_converges_on_zero_input_weights() {
        // Wx = 0, Wh = 0 -> h = tanh(b) after any number of steps.
        let x = Tensor::vector(&[1.0]);
        let w = vec![0.0, 0.0]; // one neuron: [wx, wh]
        let out = recurrent(&x, &w, &[0.5], 1, 5);
        assert!((out.as_slice()[0] - 0.5f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn recurrent_feedback_matters() {
        let x = Tensor::vector(&[1.0]);
        let w = vec![1.0, 0.5];
        let one = recurrent(&x, &w, &[0.0], 1, 1);
        let three = recurrent(&x, &w, &[0.0], 1, 3);
        assert_ne!(one.as_slice()[0], three.as_slice()[0]);
    }

    #[test]
    fn cmac_indices_deterministic_and_local() {
        let a = cmac_index(&[0.5, 0.5], 0, 8, 1024);
        let b = cmac_index(&[0.5, 0.5], 0, 8, 1024);
        assert_eq!(a, b);
        // A tiny perturbation keeps most slots identical (CMAC locality).
        let same: usize = (0..8)
            .filter(|&s| {
                cmac_index(&[0.5, 0.5], s, 8, 1024) == cmac_index(&[0.51, 0.5], s, 8, 1024)
            })
            .count();
        assert!(same >= 6, "only {same}/8 slots stable");
    }

    #[test]
    fn classify_returns_topk_indices() {
        let x = Tensor::vector(&[0.1, 0.9, 0.3, 0.7]);
        let out = classify(&x, 2);
        assert_eq!(out.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::from_vec(Shape::new(1, 1, 2), vec![1.0, 2.0]);
        let b = Tensor::from_vec(Shape::new(2, 1, 2), vec![3.0, 4.0, 5.0, 6.0]);
        let out = concat(&[&a, &b]);
        assert_eq!(out.shape(), Shape::new(3, 1, 2));
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn forward_chain_matches_manual() {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 1, 4, 4),
                Layer::new(
                    "pool",
                    LayerKind::Pooling(PoolParam {
                        method: PoolMethod::Average,
                        kernel_size: 2,
                        stride: 2,
                    }),
                    "data",
                    "pool",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(1)),
                    "pool",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let mut ws = WeightSet::new();
        ws.insert(
            "fc",
            LayerWeights {
                w: vec![1.0; 4],
                b: vec![0.0],
            },
        );
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, _, _| 2.0);
        let out = forward(&net, &ws, &input).expect("forward");
        // avg-pool of 2s is 2, fc sums 4 of them -> 8
        assert_eq!(out.as_slice(), &[8.0]);
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let net =
            Network::from_layers("t", vec![Layer::input("data", "data", 1, 4, 4)]).expect("valid");
        let ws = WeightSet::new();
        let bad = Tensor::zeros(Shape::new(1, 2, 2));
        assert!(forward(&net, &ws, &bad).is_err());
    }

    #[test]
    fn missing_weights_is_an_error() {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 2, 1, 1),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(2)),
                    "data",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let e = forward(&net, &WeightSet::new(), &Tensor::vector(&[1.0, 2.0])).unwrap_err();
        assert!(e.detail.contains("weights missing"));
    }

    #[test]
    fn conv_layer_via_network_matches_direct() {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 1, 5, 5),
                Layer::new(
                    "conv",
                    LayerKind::Convolution(ConvParam::new(2, 3, 1)),
                    "data",
                    "conv",
                ),
            ],
        )
        .expect("valid");
        let mut ws = WeightSet::new();
        let w: Vec<f32> = (0..18).map(|i| i as f32 * 0.1).collect();
        ws.insert(
            "conv",
            LayerWeights {
                w: w.clone(),
                b: vec![0.1, -0.1],
            },
        );
        let input = Tensor::from_fn(Shape::new(1, 5, 5), |_, y, x| (y + x) as f32 * 0.5);
        let via_net = forward(&net, &ws, &input).expect("forward");
        let direct = conv2d(&input, &w, &[0.1, -0.1], 2, 3, 1, 0, 1);
        assert_eq!(via_net, direct);
    }
}
