//! Accuracy metrics used by the evaluation (paper §4.2, Fig. 10).

use crate::tensor::Tensor;

/// The paper's Eq. (1): `accuracy = (1 - (A-B)²/B²) × 100%`, evaluated over
/// vectors as the ratio of squared error energy to reference energy.
///
/// `B` is the golden reference, `A` the approximation under test. Returns a
/// percentage, clamped to `[0, 100]`.
///
/// # Panics
///
/// Panics if the vectors differ in length.
///
/// # Examples
///
/// ```
/// use deepburning_tensor::relative_accuracy;
///
/// assert_eq!(relative_accuracy(&[1.0, 2.0], &[1.0, 2.0]), 100.0);
/// assert!(relative_accuracy(&[1.1, 2.0], &[1.0, 2.0]) > 99.0);
/// ```
pub fn relative_accuracy(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "metric operands differ in length");
    let mut err = 0.0f64;
    let mut energy = 0.0f64;
    for (&ai, &bi) in a.iter().zip(b) {
        let d = (ai - bi) as f64;
        err += d * d;
        energy += (bi as f64) * (bi as f64);
    }
    if energy == 0.0 {
        return if err == 0.0 { 100.0 } else { 0.0 };
    }
    ((1.0 - err / energy) * 100.0).clamp(0.0, 100.0)
}

/// Tensor convenience wrapper over [`relative_accuracy`].
///
/// # Panics
///
/// Panics if the tensors differ in element count.
pub fn tensor_accuracy(approx: &Tensor, golden: &Tensor) -> f64 {
    relative_accuracy(approx.as_slice(), golden.as_slice())
}

/// Mean squared error between two vectors.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "metric operands differ in length");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Fraction of predictions matching labels, as a percentage.
pub fn percent_correct(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "metric operands differ in length"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / predictions.len() as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_100() {
        assert_eq!(relative_accuracy(&[3.0, -1.0], &[3.0, -1.0]), 100.0);
        assert_eq!(mse(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn gross_error_clamps_to_zero() {
        assert_eq!(relative_accuracy(&[100.0], &[1.0]), 0.0);
    }

    #[test]
    fn zero_reference_handled() {
        assert_eq!(relative_accuracy(&[0.0], &[0.0]), 100.0);
        assert_eq!(relative_accuracy(&[0.5], &[0.0]), 0.0);
    }

    #[test]
    fn small_error_small_penalty() {
        let acc = relative_accuracy(&[1.01, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert!(acc > 99.9 && acc < 100.0);
    }

    #[test]
    fn mse_known_value() {
        assert!((mse(&[1.0, 2.0], &[0.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percent_correct_counts() {
        assert_eq!(percent_correct(&[1, 2, 3, 4], &[1, 2, 0, 4]), 75.0);
        assert_eq!(percent_correct(&[], &[]), 0.0);
    }

    #[test]
    fn tensor_wrapper_agrees() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[1.0, 2.1]);
        assert_eq!(
            tensor_accuracy(&a, &b),
            relative_accuracy(&[1.0, 2.0], &[1.0, 2.1])
        );
    }
}
