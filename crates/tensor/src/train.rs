//! SGD backpropagation trainer for the small benchmark networks.
//!
//! The paper trains its ANN/MNIST/Cifar models in Matlab/Caffe; this module
//! is our substitute. It supports simple sequential networks (single-bottom
//! chains) of convolution, pooling, full-connection, activation and dropout
//! layers — exactly what the trainable zoo members use.

use crate::forward::{conv2d, full_connection, pool2d};
use crate::tensor::Tensor;
use crate::weights::WeightSet;
use deepburning_model::{LayerKind, Network, PoolMethod};
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Training target for one sample.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Classification label (softmax cross-entropy loss).
    Class(usize),
    /// Regression values (mean-squared-error loss).
    Values(Vec<f32>),
}

/// Hyper-parameters for [`train_sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Passes over the training set.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Gradient clip (absolute, per component); 0 disables.
    pub grad_clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.05,
            epochs: 20,
            weight_decay: 1e-5,
            grad_clip: 5.0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean loss after each epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss after the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Error raised when a network cannot be trained by this module.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainError {
    /// Explanation.
    pub detail: String,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot train network: {}", self.detail)
    }
}

impl std::error::Error for TrainError {}

/// Whether [`train_sgd`] supports this network (a sequential chain of
/// conv / pool / FC / activation / dropout layers).
pub fn is_trainable(net: &Network) -> bool {
    net.layers().iter().all(|l| {
        matches!(
            l.kind,
            LayerKind::Input { .. }
                | LayerKind::Convolution(_)
                | LayerKind::Pooling(_)
                | LayerKind::FullConnection(_)
                | LayerKind::Activation(_)
                | LayerKind::Dropout { .. }
        ) && l.bottoms.len() <= 1
    })
}

/// Cached activations of one forward pass (inputs to each layer).
struct Caches {
    /// Input tensor to each layer, in execution order.
    inputs: Vec<Tensor>,
    /// Final output.
    output: Tensor,
}

fn forward_cached(net: &Network, weights: &WeightSet, input: &Tensor) -> Caches {
    let mut cur = input.clone();
    let mut inputs = Vec::with_capacity(net.layers().len());
    for layer in net.layers() {
        inputs.push(cur.clone());
        cur = match &layer.kind {
            LayerKind::Input { .. } => cur,
            LayerKind::Convolution(p) => {
                let lw = weights.get(&layer.name).expect("validated weights");
                conv2d(
                    &cur,
                    &lw.w,
                    &lw.b,
                    p.num_output,
                    p.kernel_size,
                    p.stride,
                    p.pad,
                    p.group,
                )
            }
            LayerKind::Pooling(p) => pool2d(&cur, p.method, p.kernel_size, p.stride),
            LayerKind::FullConnection(p) => {
                let lw = weights.get(&layer.name).expect("validated weights");
                full_connection(&cur.flatten(), &lw.w, &lw.b, p.num_output)
            }
            LayerKind::Activation(a) => cur.map(|v| a.eval(v as f64) as f32),
            LayerKind::Dropout { .. } => cur,
            other => unreachable!("unsupported trainable layer {other:?}"),
        };
    }
    Caches {
        inputs,
        output: cur,
    }
}

/// Computes loss and the gradient w.r.t. the network output.
fn loss_and_grad(output: &Tensor, target: &Target) -> (f32, Tensor) {
    match target {
        Target::Class(t) => {
            let z = output.as_slice();
            let zmax = z.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let exps: Vec<f32> = z.iter().map(|&v| (v - zmax).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
            let loss = -(probs[*t].max(1e-12)).ln();
            let grad: Vec<f32> = probs
                .iter()
                .enumerate()
                .map(|(i, &p)| p - if i == *t { 1.0 } else { 0.0 })
                .collect();
            (loss, Tensor::vector(&grad))
        }
        Target::Values(vals) => {
            let y = output.as_slice();
            assert_eq!(y.len(), vals.len(), "target length mismatch");
            let n = y.len() as f32;
            let mut loss = 0.0;
            let grad: Vec<f32> = y
                .iter()
                .zip(vals)
                .map(|(&yi, &ti)| {
                    let d = yi - ti;
                    loss += d * d;
                    2.0 * d / n
                })
                .collect();
            (loss / n, Tensor::vector(&grad))
        }
    }
}

/// Backward pass: updates `weights` in place for one sample.
#[allow(clippy::too_many_arguments)]
fn backward_update(
    net: &Network,
    weights: &mut WeightSet,
    caches: &Caches,
    mut grad: Tensor,
    cfg: &TrainConfig,
) {
    let clip = |g: f32| {
        if cfg.grad_clip > 0.0 {
            g.clamp(-cfg.grad_clip, cfg.grad_clip)
        } else {
            g
        }
    };
    for (idx, layer) in net.layers().iter().enumerate().rev() {
        let input = &caches.inputs[idx];
        match &layer.kind {
            LayerKind::Input { .. } => {}
            LayerKind::Activation(a) => {
                grad = Tensor::from_vec(
                    input.shape(),
                    input
                        .as_slice()
                        .iter()
                        .zip(grad.as_slice())
                        .map(|(&x, &g)| g * a.derivative(x as f64) as f32)
                        .collect(),
                );
            }
            LayerKind::Dropout { .. } => {}
            LayerKind::FullConnection(p) => {
                let flat_in = input.clone().flatten();
                let x = flat_in.as_slice();
                let gy = grad.as_slice().to_vec();
                let lw = weights.get_mut(&layer.name).expect("validated weights");
                let n = x.len();
                let mut gx = vec![0.0f32; n];
                for (o, gyo) in gy.iter().enumerate().take(p.num_output) {
                    let g = clip(*gyo);
                    let row = &mut lw.w[o * n..(o + 1) * n];
                    for (i, (xi, wv)) in x.iter().zip(row.iter_mut()).enumerate() {
                        gx[i] += *wv * g;
                        *wv -= cfg.learning_rate * (g * xi + cfg.weight_decay * *wv);
                    }
                    lw.b[o] -= cfg.learning_rate * g;
                }
                grad = Tensor::from_vec(input.shape(), gx);
            }
            LayerKind::Pooling(p) => {
                let mut gx = Tensor::zeros(input.shape());
                let oshape = grad.shape();
                for c in 0..oshape.channels {
                    for oy in 0..oshape.height {
                        for ox in 0..oshape.width {
                            let g = grad.get(c, oy, ox);
                            match p.method {
                                PoolMethod::Max => {
                                    // Route the gradient to the (first) max.
                                    let (mut by, mut bx, mut bv) = (0, 0, f32::NEG_INFINITY);
                                    for ky in 0..p.kernel_size {
                                        for kx in 0..p.kernel_size {
                                            let v = input.get(
                                                c,
                                                oy * p.stride + ky,
                                                ox * p.stride + kx,
                                            );
                                            if v > bv {
                                                bv = v;
                                                by = ky;
                                                bx = kx;
                                            }
                                        }
                                    }
                                    gx.add_at(c, oy * p.stride + by, ox * p.stride + bx, g);
                                }
                                PoolMethod::Average => {
                                    let share = g / (p.kernel_size * p.kernel_size) as f32;
                                    for ky in 0..p.kernel_size {
                                        for kx in 0..p.kernel_size {
                                            gx.add_at(
                                                c,
                                                oy * p.stride + ky,
                                                ox * p.stride + kx,
                                                share,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                grad = gx;
            }
            LayerKind::Convolution(p) => {
                let ishape = input.shape();
                let oshape = grad.shape();
                let cig = ishape.channels / p.group;
                let cog = p.num_output / p.group;
                let mut gx = Tensor::zeros(ishape);
                let lw = weights.get_mut(&layer.name).expect("validated weights");
                let k = p.kernel_size;
                for co in 0..p.num_output {
                    let g_grp = co / cog;
                    for oy in 0..oshape.height {
                        for ox in 0..oshape.width {
                            let g = clip(grad.get(co, oy, ox));
                            if g == 0.0 {
                                continue;
                            }
                            lw.b[co] -= cfg.learning_rate * g;
                            for icg in 0..cig {
                                let ic = g_grp * cig + icg;
                                for ky in 0..k {
                                    for kx in 0..k {
                                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                                        let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                                        if iy < 0
                                            || ix < 0
                                            || iy >= ishape.height as isize
                                            || ix >= ishape.width as isize
                                        {
                                            continue;
                                        }
                                        let widx = ((co * cig + icg) * k + ky) * k + kx;
                                        let xv = input.get(ic, iy as usize, ix as usize);
                                        gx.add_at(ic, iy as usize, ix as usize, lw.w[widx] * g);
                                        lw.w[widx] -= cfg.learning_rate
                                            * (g * xv + cfg.weight_decay * lw.w[widx]);
                                    }
                                }
                            }
                        }
                    }
                }
                grad = gx;
            }
            other => unreachable!("unsupported trainable layer {other:?}"),
        }
        // Gradients w.r.t. volumes may arrive flattened from FC layers.
        if grad.shape().elements() == caches.inputs[idx].shape().elements()
            && grad.shape() != caches.inputs[idx].shape()
        {
            grad = Tensor::from_vec(caches.inputs[idx].shape(), grad.into_vec());
        }
    }
}

/// Trains `weights` in place by per-sample SGD.
///
/// # Errors
///
/// Returns [`TrainError`] if the network contains layers this trainer does
/// not support (see [`is_trainable`]).
///
/// # Examples
///
/// ```
/// use deepburning_model::{Layer, LayerKind, Network, FullParam, Activation};
/// use deepburning_tensor::{train_sgd, Init, Target, Tensor, TrainConfig, WeightSet};
/// use rand::SeedableRng;
///
/// let net = Network::from_layers("xor", vec![
///     Layer::input("data", "data", 2, 1, 1),
///     Layer::new("h", LayerKind::FullConnection(FullParam::dense(4)), "data", "h"),
///     Layer::new("ht", LayerKind::Activation(Activation::Tanh), "h", "h"),
///     Layer::new("o", LayerKind::FullConnection(FullParam::dense(1)), "h", "o"),
/// ])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let mut ws = WeightSet::init(&net, Init::Xavier, &mut rng)?;
/// let data = vec![
///     (Tensor::vector(&[0.0, 0.0]), Target::Values(vec![0.0])),
///     (Tensor::vector(&[1.0, 1.0]), Target::Values(vec![0.0])),
///     (Tensor::vector(&[0.0, 1.0]), Target::Values(vec![1.0])),
///     (Tensor::vector(&[1.0, 0.0]), Target::Values(vec![1.0])),
/// ];
/// let cfg = TrainConfig { learning_rate: 0.1, epochs: 600, ..TrainConfig::default() };
/// let report = train_sgd(&net, &mut ws, &data, &cfg, &mut rng)?;
/// assert!(report.final_loss() < 0.05);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn train_sgd<R: Rng>(
    net: &Network,
    weights: &mut WeightSet,
    data: &[(Tensor, Target)],
    cfg: &TrainConfig,
    rng: &mut R,
) -> Result<TrainReport, TrainError> {
    if !is_trainable(net) {
        return Err(TrainError {
            detail: "network contains layers unsupported by the SGD trainer".into(),
        });
    }
    weights.validate(net).map_err(|e| TrainError {
        detail: e.to_string(),
    })?;
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut report = TrainReport::default();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        for &i in &order {
            let (input, target) = &data[i];
            let caches = forward_cached(net, weights, input);
            let (loss, grad) = loss_and_grad(&caches.output, target);
            epoch_loss += loss;
            backward_update(net, weights, &caches, grad, cfg);
        }
        report
            .epoch_losses
            .push(epoch_loss / data.len().max(1) as f32);
    }
    Ok(report)
}

/// Classification accuracy of `weights` on a labelled set, using argmax of
/// the network output.
pub fn classification_accuracy(
    net: &Network,
    weights: &WeightSet,
    data: &[(Tensor, usize)],
) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .iter()
        .filter(|(x, label)| {
            crate::forward::forward(net, weights, x)
                .map(|out| out.argmax() == *label)
                .unwrap_or(false)
        })
        .count();
    correct as f32 / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::Init;
    use deepburning_model::{Activation, ConvParam, FullParam, Layer, PoolParam, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(inputs: usize, hidden: usize, outputs: usize) -> Network {
        Network::from_layers(
            "mlp",
            vec![
                Layer::input("data", "data", inputs, 1, 1),
                Layer::new(
                    "h",
                    LayerKind::FullConnection(FullParam::dense(hidden)),
                    "data",
                    "h",
                ),
                Layer::new("ht", LayerKind::Activation(Activation::Tanh), "h", "h"),
                Layer::new(
                    "o",
                    LayerKind::FullConnection(FullParam::dense(outputs)),
                    "h",
                    "o",
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn xor_regression_learns() {
        let net = mlp(2, 6, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let data = vec![
            (Tensor::vector(&[0.0, 0.0]), Target::Values(vec![0.0])),
            (Tensor::vector(&[1.0, 1.0]), Target::Values(vec![0.0])),
            (Tensor::vector(&[0.0, 1.0]), Target::Values(vec![1.0])),
            (Tensor::vector(&[1.0, 0.0]), Target::Values(vec![1.0])),
        ];
        let cfg = TrainConfig {
            learning_rate: 0.1,
            epochs: 600,
            ..TrainConfig::default()
        };
        let report = train_sgd(&net, &mut ws, &data, &cfg, &mut rng).expect("trains");
        assert!(
            report.final_loss() < 0.05,
            "final loss {}",
            report.final_loss()
        );
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn classification_on_linearly_separable() {
        let net = mlp(2, 8, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        // Class 0: x+y < 1, class 1: x+y > 1.
        let mut data = Vec::new();
        for i in 0..60 {
            let x = (i % 10) as f32 / 10.0;
            let y = (i / 10) as f32 / 6.0;
            let label = usize::from(x + y > 1.0);
            data.push((Tensor::vector(&[x, y]), Target::Class(label)));
        }
        let cfg = TrainConfig {
            learning_rate: 0.1,
            epochs: 120,
            ..TrainConfig::default()
        };
        train_sgd(&net, &mut ws, &data, &cfg, &mut rng).expect("trains");
        let labelled: Vec<(Tensor, usize)> = data
            .iter()
            .map(|(t, tg)| {
                let Target::Class(c) = tg else { unreachable!() };
                (t.clone(), *c)
            })
            .collect();
        let acc = classification_accuracy(&net, &ws, &labelled);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn tiny_convnet_learns_orientation() {
        // Distinguish horizontal vs vertical bars on 6x6 images.
        let net = Network::from_layers(
            "cnn",
            vec![
                Layer::input("data", "data", 1, 6, 6),
                Layer::new(
                    "conv",
                    LayerKind::Convolution(ConvParam::new(4, 3, 1)),
                    "data",
                    "conv",
                ),
                Layer::new(
                    "relu",
                    LayerKind::Activation(Activation::Relu),
                    "conv",
                    "conv",
                ),
                Layer::new(
                    "pool",
                    LayerKind::Pooling(PoolParam {
                        method: PoolMethod::Max,
                        kernel_size: 2,
                        stride: 2,
                    }),
                    "conv",
                    "pool",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(2)),
                    "pool",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let mut rng = StdRng::seed_from_u64(11);
        let mut ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let mut data = Vec::new();
        for pos in 1..5 {
            data.push((
                Tensor::from_fn(Shape::new(1, 6, 6), |_, y, _| f32::from(y == pos)),
                Target::Class(0),
            ));
            data.push((
                Tensor::from_fn(Shape::new(1, 6, 6), |_, _, x| f32::from(x == pos)),
                Target::Class(1),
            ));
        }
        let cfg = TrainConfig {
            learning_rate: 0.05,
            epochs: 150,
            ..TrainConfig::default()
        };
        let report = train_sgd(&net, &mut ws, &data, &cfg, &mut rng).expect("trains");
        assert!(report.final_loss() < 0.2, "loss {}", report.final_loss());
        let labelled: Vec<(Tensor, usize)> = data
            .iter()
            .map(|(t, tg)| {
                let Target::Class(c) = tg else { unreachable!() };
                (t.clone(), *c)
            })
            .collect();
        assert!(classification_accuracy(&net, &ws, &labelled) > 0.9);
    }

    #[test]
    fn untrainable_network_rejected() {
        let net = Network::from_layers(
            "r",
            vec![
                Layer::input("data", "data", 4, 1, 1),
                Layer::new(
                    "rec",
                    LayerKind::Recurrent {
                        num_output: 4,
                        steps: 2,
                    },
                    "data",
                    "rec",
                ),
            ],
        )
        .expect("valid");
        assert!(!is_trainable(&net));
        let mut ws =
            WeightSet::init(&net, Init::Xavier, &mut StdRng::seed_from_u64(0)).expect("init");
        let e = train_sgd(
            &net,
            &mut ws,
            &[],
            &TrainConfig::default(),
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap_err();
        assert!(e.detail.contains("unsupported"));
    }

    #[test]
    fn loss_and_grad_softmax_sane() {
        let out = Tensor::vector(&[2.0, 0.0]);
        let (loss, grad) = loss_and_grad(&out, &Target::Class(0));
        assert!(loss < 0.2);
        assert!(grad.as_slice()[0] < 0.0); // pushes class 0 logit up
        assert!(grad.as_slice()[1] > 0.0);
    }

    #[test]
    fn loss_and_grad_mse_sane() {
        let out = Tensor::vector(&[1.0, 3.0]);
        let (loss, grad) = loss_and_grad(&out, &Target::Values(vec![0.0, 3.0]));
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad.as_slice()[0] - 1.0).abs() < 1e-6);
        assert_eq!(grad.as_slice()[1], 0.0);
    }
}
