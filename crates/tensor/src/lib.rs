//! Reference f32 tensor engine for DeepBurning: golden forward propagation,
//! SGD training and synthetic datasets.
//!
//! This crate is the "software neural network on CPU" of the paper's
//! evaluation — the baseline every accelerator run is compared against for
//! both speed (via op counts) and output accuracy — and the trainer that
//! replaces the paper's Matlab/Caffe training step.
//!
//! # Examples
//!
//! Train a tiny MLP and evaluate it:
//!
//! ```
//! use deepburning_model::{Activation, FullParam, Layer, LayerKind, Network};
//! use deepburning_tensor::{forward, train_sgd, Init, Target, Tensor, TrainConfig, WeightSet};
//! use rand::SeedableRng;
//!
//! let net = Network::from_layers("demo", vec![
//!     Layer::input("data", "data", 1, 1, 1),
//!     Layer::new("h", LayerKind::FullConnection(FullParam::dense(8)), "data", "h"),
//!     Layer::new("ht", LayerKind::Activation(Activation::Tanh), "h", "h"),
//!     Layer::new("o", LayerKind::FullConnection(FullParam::dense(1)), "h", "o"),
//! ])?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut ws = WeightSet::init(&net, Init::Xavier, &mut rng)?;
//! let data: Vec<_> = (0..32)
//!     .map(|i| {
//!         let x = i as f32 / 32.0;
//!         (Tensor::vector(&[x]), Target::Values(vec![(x * 3.0).sin()]))
//!     })
//!     .collect();
//! train_sgd(&net, &mut ws, &data, &TrainConfig::default(), &mut rng)?;
//! let y = forward(&net, &ws, &Tensor::vector(&[0.5]))?;
//! assert!(y.as_slice()[0].is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod data;
mod forward;
mod metrics;
mod tensor;
mod train;
mod weights;

pub use data::{
    digits_dataset, fft_reference, jpeg_reference, kmeans_reference, regression_dataset,
    render_digit, texture_image, textures_dataset,
};
pub use forward::{
    activate, associative, classify, cmac_index, concat, conv2d, eval_layer, forward, forward_all,
    full_connection, inception, lrn, pool2d, recurrent, EvalError,
};
pub use metrics::{mse, percent_correct, relative_accuracy, tensor_accuracy};
pub use tensor::Tensor;
pub use train::{
    classification_accuracy, is_trainable, train_sgd, Target, TrainConfig, TrainError, TrainReport,
};
pub use weights::{expected_sizes, Init, LayerWeights, WeightError, WeightSet};

#[cfg(test)]
mod proptests {
    use super::*;
    use deepburning_model::{PoolMethod, Shape};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn conv_linearity(scale in -2.0f32..2.0, seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let input = Tensor::from_fn(Shape::new(1, 5, 5), |_, _, _| rng.gen_range(-1.0..1.0f32));
            let w: Vec<f32> = (0..9).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let y1 = conv2d(&input, &w, &[0.0], 1, 3, 1, 0, 1);
            let scaled = input.map(|v| v * scale);
            let y2 = conv2d(&scaled, &w, &[0.0], 1, 3, 1, 0, 1);
            for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
                prop_assert!((a * scale - b).abs() < 1e-3, "{a} * {scale} != {b}");
            }
        }

        #[test]
        fn max_pool_bounded_by_input(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let input = Tensor::from_fn(Shape::new(2, 6, 6), |_, _, _| rng.gen_range(-1.0..1.0f32));
            let out = pool2d(&input, PoolMethod::Max, 2, 2);
            let in_max = input.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let out_max = out.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out_max <= in_max + 1e-6);
            // Every pooled value exists in the input.
            for &v in out.as_slice() {
                prop_assert!(input.as_slice().contains(&v));
            }
        }

        #[test]
        fn avg_pool_preserves_mean(seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, _, _| rng.gen_range(-1.0..1.0f32));
            let out = pool2d(&input, PoolMethod::Average, 2, 2);
            // Non-overlapping full tiling: means agree.
            prop_assert!((input.mean() - out.mean()).abs() < 1e-5);
        }

        #[test]
        fn relative_accuracy_bounds(values in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let acc = relative_accuracy(&values, &values);
            prop_assert_eq!(acc, 100.0);
        }

        #[test]
        fn fc_is_affine(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let w: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let b: Vec<f32> = (0..3).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let y: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let fx = full_connection(&Tensor::vector(&x), &w, &b, 3);
            let fy = full_connection(&Tensor::vector(&y), &w, &b, 3);
            let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            let fsum = full_connection(&Tensor::vector(&sum), &w, &b, 3);
            let f0 = full_connection(&Tensor::vector(&[0.0; 4]), &w, &b, 3);
            // f(x+y) = f(x) + f(y) - f(0) for affine maps.
            for i in 0..3 {
                let expect = fx.as_slice()[i] + fy.as_slice()[i] - f0.as_slice()[i];
                prop_assert!((fsum.as_slice()[i] - expect).abs() < 1e-4);
            }
        }
    }
}
