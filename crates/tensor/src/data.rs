//! Synthetic dataset generators.
//!
//! The paper evaluates on MNIST, CIFAR, ImageNet and three AxBench-derived
//! approximation tasks (fft, jpeg, kmeans). None of those datasets ship with
//! this reproduction, so we generate procedural equivalents that exercise
//! the same code paths: glyph images for digit recognition, oriented
//! textures for image classification, and the actual fft/jpeg/kmeans
//! reference functions for the approximation tasks (the paper's Eq. (1)
//! compares the NN against exactly such a "golden reference implemented
//! with orthodox program").

use crate::tensor::Tensor;
use deepburning_model::Shape;
use rand::Rng;

/// 5×7 bitmaps of the ten digits (classic font), row-major, `#` = ink.
const DIGIT_GLYPHS: [[&str; 7]; 10] = [
    [
        " ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### ",
    ], // 0
    [
        "  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### ",
    ], // 1
    [
        " ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####",
    ], // 2
    [
        " ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### ",
    ], // 3
    [
        "   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # ",
    ], // 4
    [
        "#####", "#    ", "#### ", "    #", "    #", "#   #", " ### ",
    ], // 5
    [
        " ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### ",
    ], // 6
    [
        "#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   ",
    ], // 7
    [
        " ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### ",
    ], // 8
    [
        " ### ", "#   #", "#   #", " ####", "    #", "    #", " ### ",
    ], // 9
];

/// Renders one digit glyph into a `shape`-sized image with sub-pixel jitter
/// and additive noise. Returns values in `[0, 1]`.
pub fn render_digit<R: Rng>(digit: usize, shape: Shape, noise: f32, rng: &mut R) -> Tensor {
    assert!(digit < 10, "digit out of range");
    let glyph = &DIGIT_GLYPHS[digit];
    let (h, w) = (shape.height as f32, shape.width as f32);
    let jx = rng.gen_range(-0.08..0.08f32);
    let jy = rng.gen_range(-0.08..0.08f32);
    let scale = rng.gen_range(0.85..1.0f32);
    Tensor::from_fn(shape, |_, y, x| {
        // Map the pixel into glyph coordinates (centered, scaled).
        let gy = ((y as f32 / h - 0.5 - jy) / scale + 0.5) * 7.0;
        let gx = ((x as f32 / w - 0.5 - jx) / scale + 0.5) * 5.0;
        let ink = if (0.0..7.0).contains(&gy) && (0.0..5.0).contains(&gx) {
            let row = glyph[gy as usize].as_bytes();
            f32::from(row[gx as usize] == b'#')
        } else {
            0.0
        };
        (ink + rng.gen_range(-noise..=noise)).clamp(0.0, 1.0)
    })
}

/// A labelled digit dataset of `n` samples.
pub fn digits_dataset<R: Rng>(
    n: usize,
    shape: Shape,
    noise: f32,
    rng: &mut R,
) -> Vec<(Tensor, usize)> {
    (0..n)
        .map(|i| {
            let d = i % 10;
            (render_digit(d, shape, noise, rng), d)
        })
        .collect()
}

/// Oriented-texture image classes (CIFAR stand-in): class `k` is a sinusoid
/// of class-specific orientation and frequency, per channel phase-shifted,
/// plus noise.
pub fn texture_image<R: Rng>(
    class: usize,
    classes: usize,
    shape: Shape,
    noise: f32,
    rng: &mut R,
) -> Tensor {
    let angle = std::f32::consts::PI * class as f32 / classes as f32;
    let freq = 0.5 + class as f32 * 0.35;
    let (s, c) = angle.sin_cos();
    let phase = rng.gen_range(0.0..std::f32::consts::TAU);
    Tensor::from_fn(shape, |ch, y, x| {
        let u = x as f32 * c + y as f32 * s;
        let v = (u * freq + phase + ch as f32).sin() * 0.5 + 0.5;
        (v + rng.gen_range(-noise..=noise)).clamp(0.0, 1.0)
    })
}

/// A labelled texture dataset of `n` samples over `classes` classes.
pub fn textures_dataset<R: Rng>(
    n: usize,
    classes: usize,
    shape: Shape,
    noise: f32,
    rng: &mut R,
) -> Vec<(Tensor, usize)> {
    (0..n)
        .map(|i| {
            let k = i % classes;
            (texture_image(k, classes, shape, noise, rng), k)
        })
        .collect()
}

/// The fft approximation task (AxBench style): input is a normalised angle
/// `x ∈ [0,1)`; the golden function returns one radix-2 butterfly twiddle
/// `(sin 2πx, cos 2πx)`.
pub fn fft_reference(x: &[f32]) -> Vec<f32> {
    let t = std::f32::consts::TAU * x[0];
    vec![t.sin(), t.cos()]
}

/// The jpeg approximation task: an 8-point 1-D DCT-II of the input block —
/// the kernel a JPEG encoder applies per row/column.
pub fn jpeg_reference(x: &[f32]) -> Vec<f32> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let scale = if k == 0 {
                (1.0 / n as f32).sqrt()
            } else {
                (2.0 / n as f32).sqrt()
            };
            scale
                * x.iter()
                    .enumerate()
                    .map(|(i, &xi)| {
                        xi * (std::f32::consts::PI * (i as f32 + 0.5) * k as f32 / n as f32).cos()
                    })
                    .sum::<f32>()
        })
        .collect()
}

/// Fixed centroids for the kmeans task.
const KMEANS_CENTROIDS: [[f32; 3]; 4] = [
    [0.2, 0.2, 0.2],
    [0.8, 0.2, 0.5],
    [0.2, 0.8, 0.8],
    [0.8, 0.8, 0.1],
];

/// The kmeans approximation task: distance of an RGB point to each of four
/// fixed centroids — the hot inner loop of a kmeans image filter.
pub fn kmeans_reference(x: &[f32]) -> Vec<f32> {
    KMEANS_CENTROIDS
        .iter()
        .map(|c| {
            c.iter()
                .zip(x)
                .map(|(ci, xi)| (ci - xi) * (ci - xi))
                .sum::<f32>()
                .sqrt()
        })
        .collect()
}

/// A regression dataset sampling `reference` on uniform random inputs.
pub fn regression_dataset<R: Rng>(
    reference: impl Fn(&[f32]) -> Vec<f32>,
    input_dims: usize,
    n: usize,
    rng: &mut R,
) -> Vec<(Tensor, Vec<f32>)> {
    (0..n)
        .map(|_| {
            let x: Vec<f32> = (0..input_dims)
                .map(|_| rng.gen_range(0.0..1.0f32))
                .collect();
            let y = reference(&x);
            (Tensor::vector(&x), y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn digits_are_distinguishable() {
        let mut rng = StdRng::seed_from_u64(1);
        let shape = Shape::new(1, 14, 14);
        let zero = render_digit(0, shape, 0.0, &mut rng);
        let one = render_digit(1, shape, 0.0, &mut rng);
        // A one has much less ink than a zero.
        let ink0: f32 = zero.as_slice().iter().sum();
        let ink1: f32 = one.as_slice().iter().sum();
        assert!(ink0 > ink1 * 1.3, "ink0 {ink0}, ink1 {ink1}");
    }

    #[test]
    fn digits_dataset_labels_cycle() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = digits_dataset(25, Shape::new(1, 12, 12), 0.05, &mut rng);
        assert_eq!(data.len(), 25);
        assert_eq!(data[0].1, 0);
        assert_eq!(data[13].1, 3);
        assert!(data
            .iter()
            .all(|(t, _)| t.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v))));
    }

    #[test]
    fn textures_differ_between_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let shape = Shape::new(3, 16, 16);
        let a = texture_image(0, 4, shape, 0.0, &mut rng);
        let b = texture_image(3, 4, shape, 0.0, &mut rng);
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.as_slice().len() as f32;
        assert!(diff > 0.1, "mean diff {diff}");
    }

    #[test]
    fn fft_reference_is_unit_circle() {
        let y = fft_reference(&[0.25]);
        assert!((y[0] - 1.0).abs() < 1e-6);
        assert!(y[1].abs() < 1e-6);
        let norm = (y[0] * y[0] + y[1] * y[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn jpeg_dct_of_constant_is_dc_only() {
        let y = jpeg_reference(&[1.0; 8]);
        assert!((y[0] - (8.0f32).sqrt()).abs() < 1e-5);
        for &v in &y[1..] {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn jpeg_dct_preserves_energy() {
        let x = [0.3, -0.1, 0.7, 0.2, -0.5, 0.9, 0.0, 0.4];
        let y = jpeg_reference(&x);
        let ex: f32 = x.iter().map(|v| v * v).sum();
        let ey: f32 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-4, "{ex} vs {ey}");
    }

    #[test]
    fn kmeans_distances_ordered_correctly() {
        // A point at centroid 0 is closest to centroid 0.
        let y = kmeans_reference(&[0.2, 0.2, 0.2]);
        assert!(y[0] < 1e-6);
        assert!(y[1] > 0.1 && y[2] > 0.1 && y[3] > 0.1);
    }

    #[test]
    fn regression_dataset_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = regression_dataset(kmeans_reference, 3, 10, &mut rng);
        assert_eq!(data.len(), 10);
        assert_eq!(data[0].0.shape(), Shape::vector(3));
        assert_eq!(data[0].1.len(), 4);
    }

    #[test]
    fn generators_deterministic_for_seed() {
        let a = render_digit(5, Shape::new(1, 12, 12), 0.1, &mut StdRng::seed_from_u64(9));
        let b = render_digit(5, Shape::new(1, 12, 12), 0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
