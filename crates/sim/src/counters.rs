//! The fourth differential view: analytic vs RTL performance counters.
//!
//! [`verify_counters`] replays a compiled schedule into the design's own
//! `perf_counters` RTL block on the Verilog interpreter and checks the
//! readback against the timing simulator's [`CounterSet`]:
//!
//! * **Deterministic counters** (MAC ops, buffer reads/writes, AGU bursts,
//!   peak occupancy) must match **bit-for-bit** — the replay drives each
//!   phase's exact event totals through the increment buses, so any
//!   difference is a counter-RTL bug (width truncation, mux decode,
//!   accumulator carry).
//! * **Cycle counters** (cycles, active, stall) match within a computed
//!   slack: long phases are compressed to at most `beat_cap` interpreter
//!   beats, so the RTL may under-count by exactly the compressed cycles.
//!   The documented bound is `analytic - rtl <= Σ max(0, latency_p -
//!   beat_cap)` with `rtl <= analytic`; with `beat_cap` at or above the
//!   longest phase the comparison is exact.

use crate::diff::{DiffError, Divergence, View};
use crate::timing::{simulate_folding, CounterSet, TimingParams};
use deepburning_compiler::CompiledNetwork;
use deepburning_components::{
    PERF_SEL_ACTIVE, PERF_SEL_BUF_READS, PERF_SEL_BUF_WRITES, PERF_SEL_BURSTS, PERF_SEL_CYCLES,
    PERF_SEL_MACS, PERF_SEL_PEAK, PERF_SEL_STALL,
};
use deepburning_trace as trace;
use deepburning_verilog::{Design, SimEngine};

/// Default per-phase beat cap used by `diff_design`. Bounds interpreter
/// work per phase while keeping short phases cycle-exact.
pub const DEFAULT_BEAT_CAP: u64 = 256;

/// The outcome of a counter cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterCheck {
    /// The timing simulator's counter set.
    pub analytic: CounterSet,
    /// The counters read back from the RTL register map.
    pub rtl: CounterSet,
    /// Interpreter beats actually driven (Σ min(latency, cap) per phase).
    pub replayed_cycles: u64,
    /// Allowed cycle-counter shortfall: Σ max(0, latency − cap).
    pub cycle_slack: u64,
    /// Counter comparisons that failed their rule.
    pub divergences: Vec<Divergence>,
}

impl CounterCheck {
    /// True when every deterministic counter matched exactly and every
    /// cycle counter landed within the slack bound.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Splits `total` into `beats` per-beat increments (first `total % beats`
/// beats carry one extra), so the driven sum is exactly `total`.
fn split_inc(total: u64, beats: u64, beat: u64) -> u64 {
    let q = total / beats;
    let r = total % beats;
    if beat < r {
        q + 1
    } else {
        q
    }
}

/// Replays the compiled schedule into the design's `perf_counters` block
/// and cross-checks the readback against the analytic [`CounterSet`].
///
/// # Errors
///
/// Returns [`DiffError::Rtl`] if the design carries no `perf_counters`
/// module or the interpreter fails.
pub fn verify_counters(
    design: &Design,
    compiled: &CompiledNetwork,
    params: &TimingParams,
    beat_cap: u64,
    engine: SimEngine,
) -> Result<CounterCheck, DiffError> {
    let _span = trace::span("sim", "sim.verify_counters");
    let module = design
        .modules
        .iter()
        .find(|m| m.name.starts_with("perf_counters"))
        .ok_or_else(|| DiffError::Rtl("design has no perf_counters module".into()))?;
    let inc_width = module
        .find_port("mac_inc")
        .map(|p| p.width)
        .ok_or_else(|| DiffError::Rtl("perf_counters has no mac_inc port".into()))?;
    let inc_max = if inc_width >= 64 {
        u64::MAX
    } else {
        (1u64 << inc_width) - 1
    };
    let mut it = engine.elaborate(design, &module.name)?;

    let report = simulate_folding(&compiled.folding, compiled.config.lanes, params);
    let cap = beat_cap.max(1);

    it.poke("rst", 1)?;
    it.clock()?;
    it.poke("rst", 0)?;
    it.poke("en", 1)?;

    let mut replayed = 0u64;
    let mut slack = 0u64;
    for (phase, timing) in compiled.folding.phases.iter().zip(&report.phases) {
        let latency = timing.latency_cycles.max(1);
        let stall = timing
            .dram_cycles
            .saturating_sub(timing.compute_cycles.max(timing.buffer_cycles));
        let dram_bytes = phase.work.dram_read_bytes + phase.work.dram_write_bytes;
        let bursts = if dram_bytes == 0 {
            0
        } else {
            dram_bytes.div_ceil(params.burst_bytes.max(1))
        };
        let totals = [
            phase.work.macs,
            phase.work.buffer_read_words,
            phase.work.buffer_write_words,
            bursts,
        ];
        // Enough beats that every per-beat increment fits the bus.
        let needed = totals
            .iter()
            .map(|t| t.div_ceil(inc_max))
            .max()
            .unwrap_or(0);
        let beats = latency.min(cap).max(needed).max(1);
        replayed += beats;
        slack += latency - latency.min(beats);
        let active_beats = timing.compute_cycles.min(beats);
        let stall_beats = stall.min(beats);
        let mut occupancy = 0u64;
        for beat in 0..beats {
            let wr = split_inc(totals[2], beats, beat);
            occupancy += wr;
            it.poke("active", u64::from(beat < active_beats))?;
            it.poke("stall", u64::from(beat < stall_beats))?;
            it.poke("mac_inc", split_inc(totals[0], beats, beat))?;
            it.poke("rd_inc", split_inc(totals[1], beats, beat))?;
            it.poke("wr_inc", wr)?;
            it.poke("burst_inc", split_inc(totals[3], beats, beat))?;
            it.poke("occupancy", occupancy.min(inc_max))?;
            it.clock()?;
        }
    }

    // Freeze and read the register map.
    it.poke("en", 0)?;
    let mut read = |sel: u64| -> Result<u64, DiffError> {
        it.poke("sel", sel)?;
        it.clock()?;
        Ok(it.read("rdata")?)
    };
    let rtl = CounterSet {
        cycles: read(PERF_SEL_CYCLES)?,
        active_cycles: read(PERF_SEL_ACTIVE)?,
        stall_cycles: read(PERF_SEL_STALL)?,
        mac_ops: read(PERF_SEL_MACS)?,
        buffer_reads: read(PERF_SEL_BUF_READS)?,
        buffer_writes: read(PERF_SEL_BUF_WRITES)?,
        agu_bursts: read(PERF_SEL_BURSTS)?,
        buffer_peak_words: read(PERF_SEL_PEAK)?,
    };
    let analytic = report.counters;

    let mut divergences = Vec::new();
    let mut diverge = |name: &'static str, sel: u64, a: u64, r: u64, tol: u64, detail: String| {
        divergences.push(Divergence {
            layer: "perf_counters".into(),
            kind: "counter".into(),
            views: (View::Timing, View::Rtl),
            index: sel as usize,
            lhs: a as f64,
            rhs: r as f64,
            tolerance: tol as f64,
            detail: format!("{name}: {detail}"),
        });
    };
    for (name, sel, a, r) in [
        ("mac_ops", PERF_SEL_MACS, analytic.mac_ops, rtl.mac_ops),
        (
            "buffer_reads",
            PERF_SEL_BUF_READS,
            analytic.buffer_reads,
            rtl.buffer_reads,
        ),
        (
            "buffer_writes",
            PERF_SEL_BUF_WRITES,
            analytic.buffer_writes,
            rtl.buffer_writes,
        ),
        (
            "agu_bursts",
            PERF_SEL_BURSTS,
            analytic.agu_bursts,
            rtl.agu_bursts,
        ),
        (
            "buffer_peak",
            PERF_SEL_PEAK,
            analytic.buffer_peak_words,
            rtl.buffer_peak_words,
        ),
    ] {
        if a != r {
            diverge(
                name,
                sel,
                a,
                r,
                0,
                "deterministic counter must match bit-for-bit".into(),
            );
        }
    }
    for (name, sel, a, r) in [
        ("cycles", PERF_SEL_CYCLES, analytic.cycles, rtl.cycles),
        (
            "active_cycles",
            PERF_SEL_ACTIVE,
            analytic.active_cycles,
            rtl.active_cycles,
        ),
        (
            "stall_cycles",
            PERF_SEL_STALL,
            analytic.stall_cycles,
            rtl.stall_cycles,
        ),
    ] {
        if r > a {
            diverge(
                name,
                sel,
                a,
                r,
                slack,
                "RTL cycle counter exceeds the analytic value".into(),
            );
        } else if a - r > slack {
            diverge(
                name,
                sel,
                a,
                r,
                slack,
                format!("shortfall {} exceeds replay slack", a - r),
            );
        }
    }

    if trace::active() {
        trace::counter("sim", "sim.counters.replayed_beats", replayed as f64);
        trace::counter("sim", "sim.counters.divergences", divergences.len() as f64);
    }
    Ok(CounterCheck {
        analytic,
        rtl,
        replayed_cycles: replayed,
        cycle_slack: slack,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_core::{generate, Budget};
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    name: "ctr"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 10 width: 10 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 6 kernel_size: 3 stride: 1 } }
    layers { name: "sig" type: SIGMOID bottom: "conv" top: "conv" }
    layers { name: "fc" type: FC bottom: "conv" top: "fc"
             param { num_output: 4 } }
    "#;

    #[test]
    fn counters_cross_check_clean() {
        let net = parse_network(SRC).expect("parses");
        let design = generate(&net, &Budget::Small).expect("generates");
        let check = verify_counters(
            &design.design,
            &design.compiled,
            &TimingParams::default(),
            DEFAULT_BEAT_CAP,
            SimEngine::default(),
        )
        .expect("replays");
        assert!(
            check.is_clean(),
            "{:#?} vs {:#?}: {:?}",
            check.analytic,
            check.rtl,
            check.divergences
        );
        assert!(check.replayed_cycles > 0);
        // Deterministic counters are bit-exact regardless of slack.
        assert_eq!(check.analytic.mac_ops, check.rtl.mac_ops);
        assert_eq!(check.analytic.agu_bursts, check.rtl.agu_bursts);
    }

    #[test]
    fn uncapped_replay_is_cycle_exact() {
        let net = parse_network(SRC).expect("parses");
        let design = generate(&net, &Budget::Small).expect("generates");
        let check = verify_counters(
            &design.design,
            &design.compiled,
            &TimingParams::default(),
            u64::MAX,
            SimEngine::default(),
        )
        .expect("replays");
        assert_eq!(check.cycle_slack, 0);
        assert_eq!(check.analytic, check.rtl, "uncapped replay must be exact");
    }

    #[test]
    fn tight_cap_stays_within_documented_slack() {
        let net = parse_network(SRC).expect("parses");
        let design = generate(&net, &Budget::Small).expect("generates");
        let check = verify_counters(
            &design.design,
            &design.compiled,
            &TimingParams::default(),
            4,
            SimEngine::default(),
        )
        .expect("replays");
        assert!(check.is_clean(), "{:?}", check.divergences);
        assert!(check.cycle_slack > 0, "cap 4 must compress some phase");
        assert!(check.rtl.cycles <= check.analytic.cycles);
    }

    #[test]
    fn missing_counter_module_is_an_error() {
        use deepburning_components::{Block, Coordinator};
        use deepburning_verilog::Design;
        let net = parse_network(SRC).expect("parses");
        let design = generate(&net, &Budget::Small).expect("generates");
        let bare = Design::new(Coordinator { phases: 2 }.generate());
        let err = verify_counters(
            &bare,
            &design.compiled,
            &TimingParams::default(),
            DEFAULT_BEAT_CAP,
            SimEngine::default(),
        );
        assert!(matches!(err, Err(DiffError::Rtl(_))));
    }

    #[test]
    fn both_engines_read_back_identical_counters() {
        let net = parse_network(SRC).expect("parses");
        let design = generate(&net, &Budget::Small).expect("generates");
        let run = |engine| {
            verify_counters(
                &design.design,
                &design.compiled,
                &TimingParams::default(),
                DEFAULT_BEAT_CAP,
                engine,
            )
            .expect("replays")
        };
        let tree = run(SimEngine::Tree);
        let compiled = run(SimEngine::Compiled);
        assert_eq!(tree.rtl, compiled.rtl, "register readbacks must match");
        assert_eq!(tree.analytic, compiled.analytic);
        assert_eq!(tree.replayed_cycles, compiled.replayed_cycles);
        assert_eq!(tree.cycle_slack, compiled.cycle_slack);
        assert_eq!(tree.divergences, compiled.divergences);
    }

    #[test]
    fn split_inc_sums_back_to_total() {
        for (total, beats) in [(0u64, 5u64), (7, 3), (100, 7), (5, 5), (3, 8)] {
            let sum: u64 = (0..beats).map(|b| split_inc(total, beats, b)).sum();
            assert_eq!(sum, total, "total={total} beats={beats}");
        }
    }
}
