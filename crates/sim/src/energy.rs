//! Event-based energy model (paper Fig. 9 substitute for board power
//! measurement).
//!
//! Energy = static power × latency + Σ (event count × per-event energy).
//! Constants are first-order 28 nm FPGA numbers; the figures the paper
//! reports are *relative* (DB vs Custom vs CPU), which depend on cycle
//! counts and resource occupancy, not on absolute calibration.

use crate::timing::TimingReport;
use deepburning_compiler::CompiledNetwork;
use deepburning_components::ResourceCost;
use deepburning_core::AcceleratorDesign;

/// Per-event energies and static-power coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Joules per 16-bit MAC on a DSP slice (including local routing).
    pub mac_j: f64,
    /// Joules per aux-unit operation.
    pub aux_op_j: f64,
    /// Joules per Approx-LUT evaluation.
    pub lut_op_j: f64,
    /// Joules per on-chip buffer word access.
    pub buffer_word_j: f64,
    /// Joules per DRAM byte moved.
    pub dram_byte_j: f64,
    /// Baseline board static power (PS + clocking), watts.
    pub base_static_w: f64,
    /// Static watts per occupied LUT.
    pub static_per_lut_w: f64,
    /// Static watts per occupied DSP.
    pub static_per_dsp_w: f64,
    /// Static watts per occupied BRAM bit.
    pub static_per_bram_bit_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            mac_j: 4.0e-12,
            aux_op_j: 1.0e-12,
            lut_op_j: 2.0e-12,
            buffer_word_j: 1.2e-12,
            dram_byte_j: 70.0e-12,
            base_static_w: 1.2,
            static_per_lut_w: 6.0e-6,
            static_per_dsp_w: 1.2e-3,
            static_per_bram_bit_w: 2.0e-8,
        }
    }
}

impl EnergyParams {
    /// Static power of a design occupying `resources`.
    pub fn static_power_w(&self, resources: &ResourceCost) -> f64 {
        self.base_static_w
            + resources.lut as f64 * self.static_per_lut_w
            + resources.dsp as f64 * self.static_per_dsp_w
            + resources.bram_bits as f64 * self.static_per_bram_bit_w
    }
}

/// Energy breakdown of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Dynamic energy of the MAC datapath.
    pub compute_j: f64,
    /// Dynamic energy of on-chip buffer traffic.
    pub buffer_j: f64,
    /// Dynamic energy of DRAM traffic.
    pub dram_j: f64,
    /// Static (leakage + clocking) energy over the run.
    pub static_j: f64,
    /// Sum of all components.
    pub total_j: f64,
    /// Average power over the run, watts.
    pub average_power_w: f64,
}

/// Computes the energy of one inference given its compiled work volumes,
/// its timing, and the occupied resources.
pub fn simulate_energy(
    compiled: &CompiledNetwork,
    timing: &TimingReport,
    resources: &ResourceCost,
    clock_hz: u64,
    params: &EnergyParams,
) -> EnergyReport {
    let work = compiled.folding.total_work();
    let compute_j = work.macs as f64 * params.mac_j
        + work.aux_ops as f64 * params.aux_op_j
        + work.lut_ops as f64 * params.lut_op_j;
    let buffer_j = (work.buffer_read_words + work.buffer_write_words) as f64 * params.buffer_word_j;
    let dram_j = (work.dram_read_bytes + work.dram_write_bytes) as f64 * params.dram_byte_j;
    let seconds = timing.seconds(clock_hz);
    let static_j = params.static_power_w(resources) * seconds;
    let total_j = compute_j + buffer_j + dram_j + static_j;
    EnergyReport {
        compute_j,
        buffer_j,
        dram_j,
        static_j,
        total_j,
        average_power_w: if seconds > 0.0 {
            total_j / seconds
        } else {
            0.0
        },
    }
}

/// Convenience: energy of one inference on a generated design.
pub fn inference_energy(
    design: &AcceleratorDesign,
    timing: &TimingReport,
    params: &EnergyParams,
) -> EnergyReport {
    simulate_energy(
        &design.compiled,
        timing,
        &design.resources.total,
        design.clock_hz(),
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{simulate_timing, TimingParams};
    use deepburning_compiler::{compile, CompilerConfig};
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 24 width: 24 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 32 kernel_size: 5 stride: 1 } }
    layers { name: "fc" type: FC bottom: "conv" top: "fc"
             param { num_output: 10 } }
    "#;

    fn setup(lanes: u32) -> (CompiledNetwork, TimingReport) {
        let net = parse_network(SRC).expect("parses");
        let c = compile(
            &net,
            &CompilerConfig {
                lanes,
                ..CompilerConfig::default()
            },
        )
        .expect("compiles");
        let t = simulate_timing(&c, &TimingParams::default());
        (c, t)
    }

    #[test]
    fn components_sum_to_total() {
        let (c, t) = setup(32);
        let r = simulate_energy(
            &c,
            &t,
            &ResourceCost::logic(32, 20_000, 10_000),
            100_000_000,
            &EnergyParams::default(),
        );
        let sum = r.compute_j + r.buffer_j + r.dram_j + r.static_j;
        assert!((sum - r.total_j).abs() < 1e-15);
        assert!(r.total_j > 0.0);
        assert!(r.average_power_w > 0.0);
    }

    #[test]
    fn compute_energy_tracks_macs() {
        let (c, t) = setup(32);
        let work = c.folding.total_work();
        let r = simulate_energy(
            &c,
            &t,
            &ResourceCost::ZERO,
            100_000_000,
            &EnergyParams::default(),
        );
        assert!((r.compute_j - work.macs as f64 * 4.0e-12).abs() / r.compute_j < 0.5);
    }

    #[test]
    fn bigger_design_burns_more_static() {
        let (c, t) = setup(32);
        let p = EnergyParams::default();
        let small = simulate_energy(&c, &t, &ResourceCost::logic(8, 1_000, 500), 100_000_000, &p);
        let big = simulate_energy(
            &c,
            &t,
            &ResourceCost::logic(800, 200_000, 100_000),
            100_000_000,
            &p,
        );
        assert!(big.static_j > small.static_j);
    }

    #[test]
    fn faster_run_dissipates_less_static_energy() {
        let p = EnergyParams::default();
        let (c16, t16) = setup(16);
        let (c128, t128) = setup(128);
        let res = ResourceCost::logic(128, 50_000, 25_000);
        let slow = simulate_energy(&c16, &t16, &res, 100_000_000, &p);
        let fast = simulate_energy(&c128, &t128, &res, 100_000_000, &p);
        assert!(fast.static_j < slow.static_j);
    }

    #[test]
    fn static_power_formula() {
        let p = EnergyParams::default();
        let idle = p.static_power_w(&ResourceCost::ZERO);
        assert!((idle - 1.2).abs() < 1e-12);
        let loaded = p.static_power_w(&ResourceCost::logic(100, 10_000, 0));
        assert!(loaded > idle + 0.1);
    }
}
