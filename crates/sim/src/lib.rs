//! Simulators for generated DeepBurning accelerators.
//!
//! Four views of one design:
//!
//! * [`simulate_timing`] — transaction-level cycle simulation of the folded
//!   schedule (replaces the paper's Vivado RTL timing simulation);
//! * [`simulate_energy`] — event-based energy accounting (replaces board
//!   power measurement);
//! * [`functional_forward`] — bit-true fixed-point execution through the
//!   compiler's Approx LUT images (drives the Fig. 10 accuracy experiment);
//! * [`verify_counters`] — replays the compiled schedule into the generated
//!   `perf_counters` RTL block and cross-checks the hardware counters
//!   against the analytic [`CounterSet`] (DESIGN.md §10).
//!
//! # Examples
//!
//! ```
//! use deepburning_core::{generate, Budget};
//! use deepburning_sim::{simulate_timing, TimingParams};
//!
//! let src = r#"
//! layers { name: "data" type: INPUT top: "data"
//!          input_param { channels: 1 height: 12 width: 12 } }
//! layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
//!          param { num_output: 8 kernel_size: 3 stride: 1 } }
//! "#;
//! let net = deepburning_model::parse_network(src)?;
//! let design = generate(&net, &Budget::Medium)?;
//! let timing = simulate_timing(&design.compiled, &TimingParams::default());
//! assert!(timing.total_cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod counters;
mod diff;
mod energy;
mod fullrun;
mod functional;
mod timing;

pub use counters::{verify_counters, CounterCheck, DEFAULT_BEAT_CAP};
pub use deepburning_verilog::{FlightRecorder, FlightWindow, SimEngine, SimThreads, Simulator};
pub use diff::{
    capture_layer_vcd, counter_set_json, diff_design, diff_network, diff_report_json, DiffError,
    DiffOptions, DiffReport, Divergence, LayerAudit, RtlModuleStats, View,
};
pub use energy::{inference_energy, simulate_energy, EnergyParams, EnergyReport};
pub use fullrun::{
    full_network_run, full_network_run_to_sink, FullRunOptions, FullRunReport, PhaseSlice,
    RunTimeline, SegmentTraffic, CYCLE_SLACK_PER_PHASE, DEFAULT_FLIGHT_DEPTH,
    PHASE_HANDSHAKE_CYCLES,
};
pub use functional::{functional_forward, functional_forward_all, FunctionalError};
pub use timing::{
    aggregate_by_layer, forward_latency, simulate_folding, simulate_timing, CounterSet,
    PhaseTiming, TimingParams, TimingReport,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use deepburning_compiler::{compile, CompilerConfig};
    use deepburning_model::{ConvParam, FullParam, Layer, LayerKind, Network};
    use proptest::prelude::*;

    fn arb_net() -> impl Strategy<Value = Network> {
        (1usize..4, 8usize..20, 4usize..48, 2usize..5).prop_map(|(ci, ext, co, k)| {
            let k = k.min(ext);
            Network::from_layers(
                "gen",
                vec![
                    Layer::input("data", "data", ci, ext, ext),
                    Layer::new(
                        "conv",
                        LayerKind::Convolution(ConvParam::new(co, k, 1)),
                        "data",
                        "conv",
                    ),
                    Layer::new(
                        "fc",
                        LayerKind::FullConnection(FullParam::dense(8)),
                        "conv",
                        "fc",
                    ),
                ],
            )
            .expect("valid")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn timing_monotone_in_lanes(net in arb_net(), lanes in 2u32..64) {
            let base = compile(&net, &CompilerConfig { lanes, ..CompilerConfig::default() })
                .expect("compiles");
            let doubled = compile(&net, &CompilerConfig { lanes: lanes * 2, ..CompilerConfig::default() })
                .expect("compiles");
            let p = TimingParams::default();
            let t1 = simulate_timing(&base, &p).total_cycles;
            let t2 = simulate_timing(&doubled, &p).total_cycles;
            prop_assert!(t2 <= t1, "doubling lanes must not slow down: {t1} -> {t2}");
        }

        #[test]
        fn energy_positive_and_consistent(net in arb_net(), lanes in 2u32..64) {
            let c = compile(&net, &CompilerConfig { lanes, ..CompilerConfig::default() })
                .expect("compiles");
            let t = simulate_timing(&c, &TimingParams::default());
            let r = simulate_energy(
                &c, &t,
                &deepburning_components::ResourceCost::logic(lanes, 1000 * lanes, 500),
                100_000_000,
                &EnergyParams::default(),
            );
            prop_assert!(r.total_j > 0.0);
            prop_assert!(r.compute_j > 0.0);
            let sum = r.compute_j + r.buffer_j + r.dram_j + r.static_j;
            prop_assert!((sum - r.total_j).abs() < r.total_j * 1e-9);
        }

        #[test]
        fn double_buffering_never_hurts(net in arb_net()) {
            let c = compile(&net, &CompilerConfig::default()).expect("compiles");
            let on = simulate_timing(&c, &TimingParams::default()).total_cycles;
            let off = simulate_timing(&c, &TimingParams {
                double_buffering: false, ..TimingParams::default()
            }).total_cycles;
            prop_assert!(on <= off);
        }
    }
}

#[cfg(test)]
mod diff_proptests {
    use super::*;
    use deepburning_compiler::{generate_luts, CompilerConfig};
    use deepburning_model::{
        Activation, ConvParam, FullParam, Layer, LayerKind, Network, PoolMethod, PoolParam,
    };
    use deepburning_tensor::{Init, Tensor, WeightSet};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Randomised small networks covering the datapath block family:
    /// conv → (relu | sigmoid | tanh | none) → (max | avg | no pool) → fc,
    /// with randomised shapes, kernels and strides.
    fn arb_diff_net() -> impl Strategy<Value = Network> {
        (
            1usize..3,  // input channels
            6usize..12, // input extent
            2usize..6,  // conv outputs
            2usize..4,  // conv kernel
            0usize..4,  // activation selector
            0usize..3,  // pooling selector
        )
            .prop_map(|(ci, ext, co, k, act, pool)| {
                let k = k.min(ext);
                let mut layers = vec![
                    Layer::input("data", "data", ci, ext, ext),
                    Layer::new(
                        "conv",
                        LayerKind::Convolution(ConvParam::new(co, k, 1)),
                        "data",
                        "conv",
                    ),
                ];
                let mut last = "conv";
                match act {
                    1 => layers.push(Layer::new(
                        "act",
                        LayerKind::Activation(Activation::Relu),
                        last,
                        last,
                    )),
                    2 => layers.push(Layer::new(
                        "act",
                        LayerKind::Activation(Activation::Sigmoid),
                        last,
                        last,
                    )),
                    3 => layers.push(Layer::new(
                        "act",
                        LayerKind::Activation(Activation::Tanh),
                        last,
                        last,
                    )),
                    _ => {}
                }
                let pooled_ext = ext - k + 1;
                if pool > 0 && pooled_ext >= 2 {
                    let method = if pool == 1 {
                        PoolMethod::Max
                    } else {
                        PoolMethod::Average
                    };
                    layers.push(Layer::new(
                        "pool",
                        LayerKind::Pooling(PoolParam {
                            method,
                            kernel_size: 2,
                            stride: 2,
                        }),
                        last,
                        "pool",
                    ));
                    last = "pool";
                }
                layers.push(Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(5)),
                    last,
                    "fc",
                ));
                Network::from_layers("gen-diff", layers).expect("valid")
            })
    }

    proptest! {
        // Each case elaborates and drives block RTL, so keep the count
        // modest; the deterministic zoo sweep (diffcheck) covers breadth.
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The tentpole property: for any generated network, the three
        /// execution views agree under the derived tolerance rules.
        #[test]
        fn three_views_agree_on_random_networks(net in arb_diff_net(), seed in 0u64..1024) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
            let cfg = CompilerConfig::default();
            let luts = generate_luts(&net, &cfg).expect("luts");
            let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
            let opts = DiffOptions { max_rtl_samples: 24, ..DiffOptions::default() };
            let report = diff_network(&net, &ws, &input, &luts, cfg.format, cfg.lanes, &opts)
                .expect("diff executes");
            prop_assert!(report.is_clean(), "{report}");
            prop_assert!(report.rtl_checked() > 0);
        }
    }
}
