//! Functional fixed-point simulation of the generated datapath.
//!
//! Executes a network exactly as the accelerator would: operands quantised
//! to the datapath's [`QFormat`], MACs through wide saturating
//! accumulators, activations through the compiler's Approx LUT images, and
//! average pooling through the connection box's shifting latch. Comparing
//! the result against the f32 reference (`deepburning_tensor`) yields the
//! accuracy experiment of paper Fig. 10.

use deepburning_compiler::LutImages;
use deepburning_fixed::{Accumulator, ApproxLut, Fx, QFormat, Rounding};
use deepburning_model::{Activation, Layer, LayerKind, Network, PoolMethod, Shape};
use deepburning_tensor::{cmac_index, Tensor, WeightSet};
use std::collections::BTreeMap;
use std::fmt;

/// Error raised during functional simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalError {
    /// The layer where simulation failed.
    pub layer: String,
    /// Explanation.
    pub detail: String,
}

impl fmt::Display for FunctionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulating `{}`: {}", self.layer, self.detail)
    }
}

impl std::error::Error for FunctionalError {}

fn err(layer: &str, detail: impl Into<String>) -> FunctionalError {
    FunctionalError {
        layer: layer.to_string(),
        detail: detail.into(),
    }
}

/// A fixed-point blob.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FxBlob {
    pub(crate) shape: Shape,
    pub(crate) data: Vec<Fx>,
}

impl FxBlob {
    pub(crate) fn zeros(shape: Shape, fmt: QFormat) -> Self {
        FxBlob {
            shape,
            data: vec![Fx::zero(fmt); shape.elements()],
        }
    }

    pub(crate) fn from_tensor(t: &Tensor, fmt: QFormat) -> Self {
        FxBlob {
            shape: t.shape(),
            data: t
                .as_slice()
                .iter()
                .map(|&v| Fx::from_f64(v as f64, fmt))
                .collect(),
        }
    }

    pub(crate) fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|v| v.to_f64() as f32).collect(),
        )
    }

    #[inline]
    pub(crate) fn get(&self, c: usize, y: usize, x: usize) -> Fx {
        self.data[(c * self.shape.height + y) * self.shape.width + x]
    }

    #[inline]
    pub(crate) fn get_padded(&self, fmt: QFormat, c: usize, y: isize, x: isize) -> Fx {
        if y < 0 || x < 0 || y >= self.shape.height as isize || x >= self.shape.width as isize {
            Fx::zero(fmt)
        } else {
            self.get(c, y as usize, x as usize)
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, c: usize, y: usize, x: usize, v: Fx) {
        self.data[(c * self.shape.height + y) * self.shape.width + x] = v;
    }

    pub(crate) fn flat(mut self) -> FxBlob {
        self.shape = Shape::vector(self.shape.elements());
        self
    }
}

pub(crate) fn quantize_weights(w: &[f32], fmt: QFormat) -> Vec<Fx> {
    w.iter().map(|&v| Fx::from_f64(v as f64, fmt)).collect()
}

#[allow(clippy::too_many_arguments)]
fn conv_fx(
    input: &FxBlob,
    w: &[Fx],
    b: &[Fx],
    num_output: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    group: usize,
    fmt: QFormat,
) -> FxBlob {
    let cig = input.shape.channels / group;
    let cog = num_output / group;
    let (ih, iw) = (input.shape.height, input.shape.width);
    let oh = (ih + 2 * pad - kernel) / stride + 1;
    let ow = (iw + 2 * pad - kernel) / stride + 1;
    let mut out = FxBlob::zeros(Shape::new(num_output, oh, ow), fmt);
    // The MAC chain runs on raw i64 values with a local i128 sum: blob
    // and weight formats are uniform by construction, so this computes
    // bit-for-bit what `Accumulator::mac` + `resolve(Truncate)` compute
    // (i128 addition is exact and order-independent) without per-MAC
    // format checks or padded-access branches in the innermost loop.
    let frac = fmt.frac_bits();
    for co in 0..num_output {
        let g = co / cog;
        let bias: i128 = b.get(co).map_or(0, |v| (v.raw() as i128) << frac);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut wide = bias;
                for icg in 0..cig {
                    let ic = g * cig + icg;
                    let wbase = (co * cig + icg) * kernel * kernel;
                    for ky in 0..kernel {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        let row = (ic * ih + iy as usize) * iw;
                        let wrow = wbase + ky * kernel;
                        for kx in 0..kernel {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            wide += w[wrow + kx].raw() as i128
                                * input.data[row + ix as usize].raw() as i128;
                        }
                    }
                }
                let raw = (wide >> frac).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                out.set(co, oy, ox, Fx::from_raw(raw, fmt));
            }
        }
    }
    out
}

fn pool_fx(
    input: &FxBlob,
    method: PoolMethod,
    kernel: usize,
    stride: usize,
    fmt: QFormat,
) -> FxBlob {
    let oh = (input.shape.height - kernel) / stride + 1;
    let ow = (input.shape.width - kernel) / stride + 1;
    let mut out = FxBlob::zeros(Shape::new(input.shape.channels, oh, ow), fmt);
    let window = kernel * kernel;
    let recip = Fx::from_f64(1.0 / window as f64, fmt);
    for c in 0..input.shape.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let v = match method {
                    PoolMethod::Max => {
                        let mut best = Fx::from_raw(fmt.min_raw(), fmt);
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                best = best.max(input.get(c, oy * stride + ky, ox * stride + kx));
                            }
                        }
                        best
                    }
                    PoolMethod::Average => {
                        let mut acc = Accumulator::new(fmt);
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                acc.add(input.get(c, oy * stride + ky, ox * stride + kx));
                            }
                        }
                        let sum = acc.resolve(Rounding::Truncate);
                        if window.is_power_of_two() {
                            // The shifting latch: approximate division.
                            sum.shift_right(window.trailing_zeros())
                        } else {
                            sum * recip
                        }
                    }
                };
                out.set(c, oy, ox, v);
            }
        }
    }
    out
}

/// [`fc_fx`] over unquantised `f32` weights: quantises each weight on
/// the fly (bit-identical to `quantize_weights` + [`fc_fx`]) instead of
/// materialising the quantised matrix — for the large FC layers that
/// allocation dwarfs the dot product itself.
fn fc_fx_f32(input: &FxBlob, w: &[f32], b: &[f32], num_output: usize, fmt: QFormat) -> FxBlob {
    let n = input.data.len();
    let mut out = FxBlob::zeros(Shape::vector(num_output), fmt);
    let frac = fmt.frac_bits();
    for o in 0..num_output {
        let mut wide: i128 = b.get(o).map_or(0, |v| {
            (Fx::from_f64(f64::from(*v), fmt).raw() as i128) << frac
        });
        for (x, wv) in input.data.iter().zip(&w[o * n..(o + 1) * n]) {
            wide += x.raw() as i128 * Fx::from_f64(f64::from(*wv), fmt).raw() as i128;
        }
        let raw = (wide >> frac).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        out.data[o] = Fx::from_raw(raw, fmt);
    }
    out
}

fn activation_fx(
    input: &FxBlob,
    act: Activation,
    luts: &LutImages,
    fmt: QFormat,
    layer: &str,
) -> Result<FxBlob, FunctionalError> {
    let table: Option<&ApproxLut> = match act {
        Activation::Sigmoid => Some(
            luts.get("sigmoid")
                .ok_or_else(|| err(layer, "sigmoid LUT image missing"))?,
        ),
        Activation::Tanh => Some(
            luts.get("tanh")
                .ok_or_else(|| err(layer, "tanh LUT image missing"))?,
        ),
        Activation::Relu | Activation::Identity => None,
    };
    let mut out = input.clone();
    for v in &mut out.data {
        *v = match (act, table) {
            (Activation::Relu, _) => v.max(Fx::zero(fmt)),
            (Activation::Identity, _) => *v,
            (_, Some(t)) => t.eval(*v),
            _ => unreachable!("table present for LUT activations"),
        };
    }
    Ok(out)
}

fn lrn_fx(input: &FxBlob, local_size: usize, lut: &ApproxLut, fmt: QFormat) -> FxBlob {
    let s = input.shape;
    let half = local_size / 2;
    let mut out = FxBlob::zeros(s, fmt);
    for c in 0..s.channels {
        for y in 0..s.height {
            for x in 0..s.width {
                let lo = c.saturating_sub(half);
                let hi = (c + half).min(s.channels - 1);
                let mut acc = Accumulator::new(fmt);
                for cc in lo..=hi {
                    let v = input.get(cc, y, x);
                    acc.mac(v, v);
                }
                let energy = acc.resolve(Rounding::Truncate);
                let factor = lut.eval(energy);
                out.set(c, y, x, input.get(c, y, x) * factor);
            }
        }
    }
    out
}

fn recurrent_fx(
    input: &FxBlob,
    w: &[Fx],
    b: &[Fx],
    num_output: usize,
    steps: usize,
    tanh: &ApproxLut,
    fmt: QFormat,
) -> FxBlob {
    let n_in = input.data.len();
    let mut h = vec![Fx::zero(fmt); num_output];
    for _ in 0..steps.max(1) {
        let mut next = vec![Fx::zero(fmt); num_output];
        for (o, slot) in next.iter_mut().enumerate() {
            let row = &w[o * (n_in + num_output)..(o + 1) * (n_in + num_output)];
            let mut acc = Accumulator::new(fmt);
            if let Some(bias) = b.get(o) {
                acc.add(*bias);
            }
            for (x, wv) in input.data.iter().zip(&row[..n_in]) {
                acc.mac(*x, *wv);
            }
            for (hv, wv) in h.iter().zip(&row[n_in..]) {
                acc.mac(*hv, *wv);
            }
            *slot = tanh.eval(acc.resolve(Rounding::Truncate));
        }
        h = next;
    }
    FxBlob {
        shape: Shape::vector(num_output),
        data: h,
    }
}

/// Runs the fixed-point forward pass, returning all blob values as f32
/// tensors (for direct comparison with the reference engine).
///
/// # Errors
///
/// Returns [`FunctionalError`] if weights or LUT images are missing, or the
/// input shape mismatches.
pub fn functional_forward_all(
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    luts: &LutImages,
    fmt: QFormat,
) -> Result<BTreeMap<String, Tensor>, FunctionalError> {
    use deepburning_trace as trace;
    if input.shape() != net.input_shape() {
        return Err(err("input", "input shape mismatch"));
    }
    let _span = trace::span("sim", "sim.functional");
    let mut blobs: BTreeMap<String, FxBlob> = BTreeMap::new();
    for layer in net.layers() {
        let out = eval_fx_layer(layer, &blobs, weights, input, luts, fmt)?;
        // One counter bump per layer, not per element — keeps the hot loops
        // untouched.
        if trace::active() {
            trace::counter("sim", "fx.layers", 1.0);
            trace::counter("sim", "fx.elements", out.data.len() as f64);
            if matches!(
                layer.kind,
                LayerKind::Activation(Activation::Sigmoid | Activation::Tanh)
                    | LayerKind::Lrn(_)
                    | LayerKind::Recurrent { .. }
            ) {
                trace::counter("sim", "fx.lut_evals", out.data.len() as f64);
            }
        }
        for top in &layer.tops {
            blobs.insert(top.clone(), out.clone());
        }
    }
    Ok(blobs.into_iter().map(|(k, v)| (k, v.to_tensor())).collect())
}

pub(crate) fn eval_fx_layer(
    layer: &Layer,
    blobs: &BTreeMap<String, FxBlob>,
    weights: &WeightSet,
    input: &Tensor,
    luts: &LutImages,
    fmt: QFormat,
) -> Result<FxBlob, FunctionalError> {
    let bottom = |i: usize| -> Result<&FxBlob, FunctionalError> {
        layer
            .bottoms
            .get(i)
            .and_then(|b| blobs.get(b))
            .ok_or_else(|| err(&layer.name, "input blob not computed"))
    };
    let lw = || {
        weights
            .get(&layer.name)
            .ok_or_else(|| err(&layer.name, "weights missing"))
    };
    Ok(match &layer.kind {
        LayerKind::Input { .. } => FxBlob::from_tensor(input, fmt),
        LayerKind::Convolution(p) => {
            let lw = lw()?;
            conv_fx(
                bottom(0)?,
                &quantize_weights(&lw.w, fmt),
                &quantize_weights(&lw.b, fmt),
                p.num_output,
                p.kernel_size,
                p.stride,
                p.pad,
                p.group,
                fmt,
            )
        }
        LayerKind::Pooling(p) => pool_fx(bottom(0)?, p.method, p.kernel_size, p.stride, fmt),
        LayerKind::FullConnection(p) => {
            let lw = lw()?;
            let flat = bottom(0)?.clone().flat();
            fc_fx_f32(&flat, &lw.w, &lw.b, p.num_output, fmt)
        }
        LayerKind::Activation(a) => activation_fx(bottom(0)?, *a, luts, fmt, &layer.name)?,
        LayerKind::Lrn(p) => {
            let lut = luts
                .get(&format!("lrn:{}", layer.name))
                .ok_or_else(|| err(&layer.name, "LRN factor LUT missing"))?;
            lrn_fx(bottom(0)?, p.local_size, lut, fmt)
        }
        LayerKind::Dropout { .. } | LayerKind::Memory { .. } => bottom(0)?.clone(),
        LayerKind::Recurrent { num_output, steps } => {
            let lw = lw()?;
            let tanh = luts
                .get("tanh")
                .ok_or_else(|| err(&layer.name, "tanh LUT image missing"))?;
            let flat = bottom(0)?.clone().flat();
            recurrent_fx(
                &flat,
                &quantize_weights(&lw.w, fmt),
                &quantize_weights(&lw.b, fmt),
                *num_output,
                *steps,
                tanh,
                fmt,
            )
        }
        LayerKind::Associative {
            table_size,
            active_cells,
        } => {
            let lw = lw()?;
            let table = quantize_weights(&lw.w, fmt);
            let src = bottom(0)?;
            let x: Vec<f32> = src.data.iter().map(|v| v.to_f64() as f32).collect();
            let data = (0..*active_cells)
                .map(|slot| table[cmac_index(&x, slot, *active_cells, *table_size)])
                .collect();
            FxBlob {
                shape: Shape::vector(*active_cells),
                data,
            }
        }
        LayerKind::Classifier { top_k } => {
            let src = bottom(0)?;
            let mut indexed: Vec<(usize, Fx)> = src.data.iter().copied().enumerate().collect();
            indexed.sort_by_key(|&(_, v)| std::cmp::Reverse(v.raw()));
            FxBlob {
                shape: Shape::vector(*top_k),
                data: indexed
                    .iter()
                    .take(*top_k)
                    .map(|(i, _)| Fx::from_f64(*i as f64, fmt))
                    .collect(),
            }
        }
        LayerKind::Inception(p) => {
            let lw = lw()?;
            let src = bottom(0)?;
            let ci = src.shape.channels;
            let w = quantize_weights(&lw.w, fmt);
            let b = quantize_weights(&lw.b, fmt);
            let w1_end = p.c1x1 * ci;
            let w3_end = w1_end + p.c3x3 * ci * 9;
            let w5_end = w3_end + p.c5x5 * ci * 25;
            let o1 = conv_fx(src, &w[..w1_end], &b[..p.c1x1], p.c1x1, 1, 1, 0, 1, fmt);
            let o3 = conv_fx(
                src,
                &w[w1_end..w3_end],
                &b[p.c1x1..p.c1x1 + p.c3x3],
                p.c3x3,
                3,
                1,
                1,
                1,
                fmt,
            );
            let o5 = conv_fx(
                src,
                &w[w3_end..w5_end],
                &b[p.c1x1 + p.c3x3..p.c1x1 + p.c3x3 + p.c5x5],
                p.c5x5,
                5,
                1,
                2,
                1,
                fmt,
            );
            // Pool branch: clamped 3x3 max then 1x1 projection.
            let mut pooled = src.clone();
            for c in 0..ci {
                for y in 0..src.shape.height {
                    for x in 0..src.shape.width {
                        let mut m = Fx::from_raw(fmt.min_raw(), fmt);
                        for dy in -1isize..=1 {
                            for dx in -1isize..=1 {
                                let yy = y as isize + dy;
                                let xx = x as isize + dx;
                                if yy >= 0
                                    && xx >= 0
                                    && (yy as usize) < src.shape.height
                                    && (xx as usize) < src.shape.width
                                {
                                    m = m.max(src.get(c, yy as usize, xx as usize));
                                }
                            }
                        }
                        pooled.set(c, y, x, m);
                    }
                }
            }
            let op = conv_fx(
                &pooled,
                &w[w5_end..],
                &b[p.c1x1 + p.c3x3 + p.c5x5..],
                p.cpool,
                1,
                1,
                0,
                1,
                fmt,
            );
            // Concatenate branches over channels.
            let (h, wd) = (src.shape.height, src.shape.width);
            let mut out = FxBlob::zeros(Shape::new(p.total_output(), h, wd), fmt);
            let mut base = 0;
            for part in [&o1, &o3, &o5, &op] {
                for c in 0..part.shape.channels {
                    for y in 0..h {
                        for x in 0..wd {
                            out.set(base + c, y, x, part.get(c, y, x));
                        }
                    }
                }
                base += part.shape.channels;
            }
            out
        }
        LayerKind::Concat => {
            let parts: Vec<&FxBlob> = (0..layer.bottoms.len())
                .map(bottom)
                .collect::<Result<_, _>>()?;
            let (h, w) = (parts[0].shape.height, parts[0].shape.width);
            let total: usize = parts.iter().map(|p| p.shape.channels).sum();
            let mut out = FxBlob::zeros(Shape::new(total, h, w), fmt);
            let mut base = 0;
            for part in parts {
                for c in 0..part.shape.channels {
                    for y in 0..h {
                        for x in 0..w {
                            out.set(base + c, y, x, part.get(c, y, x));
                        }
                    }
                }
                base += part.shape.channels;
            }
            out
        }
        LayerKind::Eltwise => {
            let mut out = bottom(0)?.clone();
            for i in 1..layer.bottoms.len() {
                let other = bottom(i)?;
                for (o, v) in out.data.iter_mut().zip(&other.data) {
                    *o = *o + *v;
                }
            }
            out
        }
    })
}

/// Runs the fixed-point forward pass and returns the final output.
///
/// # Errors
///
/// See [`functional_forward_all`].
pub fn functional_forward(
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    luts: &LutImages,
    fmt: QFormat,
) -> Result<Tensor, FunctionalError> {
    let blobs = functional_forward_all(net, weights, input, luts, fmt)?;
    let outs = net.output_blobs();
    let last = outs
        .last()
        .ok_or_else(|| err("network", "no output blob"))?;
    Ok(blobs[last].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{generate_luts, CompilerConfig};
    use deepburning_model::{parse_network, ConvParam, FullParam};
    use deepburning_tensor::{forward, tensor_accuracy, Init};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp_src() -> &'static str {
        r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 6 height: 1 width: 1 } }
        layers { name: "h" type: FC bottom: "data" top: "h"
                 param { num_output: 12 } }
        layers { name: "sig" type: SIGMOID bottom: "h" top: "h" }
        layers { name: "o" type: FC bottom: "h" top: "o"
                 param { num_output: 4 } }
        "#
    }

    #[test]
    fn fixed_point_tracks_f32_reference() {
        let net = parse_network(mlp_src()).expect("parses");
        let mut rng = StdRng::seed_from_u64(7);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let input = Tensor::vector(&[0.5, -0.25, 0.75, 0.1, -0.6, 0.3]);
        let golden = forward(&net, &ws, &input).expect("reference");
        let approx = functional_forward(&net, &ws, &input, &luts, cfg.format).expect("sim");
        let acc = tensor_accuracy(&approx, &golden);
        assert!(acc > 95.0, "accuracy {acc}%");
    }

    #[test]
    fn wider_format_is_more_accurate() {
        let net = parse_network(mlp_src()).expect("parses");
        let mut rng = StdRng::seed_from_u64(11);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let input = Tensor::vector(&[0.3, 0.9, -0.4, 0.2, 0.6, -0.8]);
        let golden = forward(&net, &ws, &input).expect("reference");

        let narrow_cfg = CompilerConfig {
            format: QFormat::Q4_4,
            ..CompilerConfig::default()
        };
        let wide_cfg = CompilerConfig {
            format: QFormat::Q16_16,
            lut_entries: 256,
            ..CompilerConfig::default()
        };
        let narrow = functional_forward(
            &net,
            &ws,
            &input,
            &generate_luts(&net, &narrow_cfg).expect("luts"),
            narrow_cfg.format,
        )
        .expect("sim");
        let wide = functional_forward(
            &net,
            &ws,
            &input,
            &generate_luts(&net, &wide_cfg).expect("luts"),
            wide_cfg.format,
        )
        .expect("sim");
        let acc_narrow = tensor_accuracy(&narrow, &golden);
        let acc_wide = tensor_accuracy(&wide, &golden);
        assert!(acc_wide >= acc_narrow, "{acc_wide} vs {acc_narrow}");
        assert!(acc_wide > 99.0, "{acc_wide}");
    }

    #[test]
    fn conv_pool_path_matches_reference_shape_and_values() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 1 height: 8 width: 8 } }
        layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
                 param { num_output: 4 kernel_size: 3 stride: 1 } }
        layers { name: "relu" type: RELU bottom: "conv" top: "conv" }
        layers { name: "pool" type: POOLING bottom: "conv" top: "pool"
                 pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
        "#;
        let net = parse_network(src).expect("parses");
        let mut rng = StdRng::seed_from_u64(3);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let input = Tensor::from_fn(Shape::new(1, 8, 8), |_, y, x| ((y * 8 + x) as f32) / 64.0);
        let golden = forward(&net, &ws, &input).expect("reference");
        let approx = functional_forward(&net, &ws, &input, &luts, cfg.format).expect("sim");
        assert_eq!(approx.shape(), golden.shape());
        let acc = tensor_accuracy(&approx, &golden);
        assert!(acc > 95.0, "accuracy {acc}%");
    }

    #[test]
    fn avg_pool_uses_shift_for_pow2_windows() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 1 height: 4 width: 4 } }
        layers { name: "pool" type: POOLING bottom: "data" top: "pool"
                 pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
        "#;
        let net = parse_network(src).expect("parses");
        let ws = WeightSet::new();
        let luts = LutImages::new();
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, _, _| 1.0);
        let out = functional_forward(&net, &ws, &input, &luts, QFormat::Q8_8).expect("sim");
        // (1+1+1+1) >> 2 = 1 exactly.
        assert!(out.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn missing_lut_image_is_an_error() {
        let net = parse_network(mlp_src()).expect("parses");
        let mut rng = StdRng::seed_from_u64(1);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let e = functional_forward(
            &net,
            &ws,
            &Tensor::vector(&[0.0; 6]),
            &LutImages::new(),
            QFormat::Q8_8,
        )
        .unwrap_err();
        assert!(e.detail.contains("sigmoid LUT image missing"));
    }

    #[test]
    fn classifier_indices_exact() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 4 height: 1 width: 1 } }
        layers { name: "cls" type: CLASSIFIER bottom: "data" top: "cls"
                 classifier_param { top_k: 2 } }
        "#;
        let net = parse_network(src).expect("parses");
        let out = functional_forward(
            &net,
            &WeightSet::new(),
            &Tensor::vector(&[0.1, 0.9, 0.2, 0.5]),
            &LutImages::new(),
            QFormat::Q8_8,
        )
        .expect("sim");
        assert_eq!(out.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn weights_layout_mismatch_caught() {
        let net = parse_network(mlp_src()).expect("parses");
        // No weights at all.
        let e = functional_forward(
            &net,
            &WeightSet::new(),
            &Tensor::vector(&[0.0; 6]),
            &LutImages::new(),
            QFormat::Q8_8,
        )
        .unwrap_err();
        assert!(e.detail.contains("weights missing"));
    }

    #[test]
    fn eq1_metric_against_direct_quantization() {
        // Quantisation alone (no LUT error) keeps the relative-distance
        // accuracy near 100% for a linear layer.
        let net = deepburning_model::Network::from_layers(
            "lin",
            vec![
                deepburning_model::Layer::input("data", "data", 4, 1, 1),
                deepburning_model::Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(4)),
                    "data",
                    "fc",
                ),
            ],
        )
        .expect("valid");
        let mut rng = StdRng::seed_from_u64(2);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let input = Tensor::vector(&[0.25, -0.5, 0.125, 1.0]);
        let golden = forward(&net, &ws, &input).expect("reference");
        let approx =
            functional_forward(&net, &ws, &input, &LutImages::new(), QFormat::Q16_16).expect("sim");
        assert!(tensor_accuracy(&approx, &golden) > 99.9);
    }

    #[test]
    fn grouped_conv_fx() {
        let net = deepburning_model::Network::from_layers(
            "g",
            vec![
                deepburning_model::Layer::input("data", "data", 2, 3, 3),
                deepburning_model::Layer::new(
                    "conv",
                    LayerKind::Convolution(ConvParam::new(2, 1, 1).with_group(2)),
                    "data",
                    "conv",
                ),
            ],
        )
        .expect("valid");
        let mut ws = WeightSet::new();
        ws.insert(
            "conv",
            deepburning_tensor::LayerWeights {
                w: vec![1.0, 1.0],
                b: vec![0.0, 0.0],
            },
        );
        let input = Tensor::from_fn(Shape::new(2, 3, 3), |c, _, _| (c + 1) as f32);
        let out =
            functional_forward(&net, &ws, &input, &LutImages::new(), QFormat::Q8_8).expect("sim");
        assert_eq!(out.as_slice()[0], 1.0);
        assert_eq!(out.as_slice()[9], 2.0);
    }
}
