//! Differential verification across the three execution views.
//!
//! Every generated accelerator can be executed three ways:
//!
//! * **Tensor** — the `f32` software reference (`deepburning_tensor`), the
//!   "CPU-based NN" of paper Fig. 10;
//! * **Functional** — the bit-true fixed-point simulator
//!   ([`functional_forward`](crate::functional_forward)), quantised
//!   operands through wide accumulators and Approx-LUT images;
//! * **RTL** — the generated, linted Verilog blocks executed on the
//!   behavioural interpreter (`deepburning_verilog::Interpreter`).
//!
//! This module runs one input through all three views layer by layer and
//! cross-checks them under per-view-pair tolerance rules:
//!
//! * Functional ↔ RTL must agree **bit-exactly**: both claim to be the
//!   datapath, so a single differing raw word is a generator bug.
//! * Tensor ↔ Functional must agree within a **derived error bound**
//!   propagated through the layer graph from the [`QFormat`] resolution
//!   and each table's [`ApproxLut::max_error`] — quantisation is allowed
//!   to drift, but only as far as arithmetic says it can.
//!
//! The RTL view drives the same block generators the RTL assembler
//! instantiates (synergy neurons, pooling units, Approx-LUT interpolators,
//! LRN units, K-sorters, connection boxes, buffers), elaborated on the
//! interpreter after a structural lint. Because the wide accumulator is
//! order-insensitive, the lane count is capped so every bus fits the
//! interpreter's 64-bit signal limit; large layers are checked at a
//! deterministic sample of output positions (the harness marshals data
//! between blocks exactly as the coordinator/AGUs would).

use crate::counters::{verify_counters, CounterCheck};
use crate::functional::{eval_fx_layer, quantize_weights, FunctionalError, FxBlob};
use crate::timing::{CounterSet, TimingParams};
use deepburning_compiler::LutImages;
use deepburning_components::{
    ApproxLutBlock, Block, BufferBlock, ConnectionBox, KSorter, LrnUnit, PoolingUnit, SynergyNeuron,
};
use deepburning_core::AcceleratorDesign;
use deepburning_fixed::{ApproxLut, Fx, QFormat};
use deepburning_lint::{analyze_ranges, AnalysisReport, RangeProof};
use deepburning_model::{Activation, Layer, LayerKind, Network, PoolMethod};
use deepburning_tensor::{cmac_index, eval_layer, Tensor, WeightSet};
use deepburning_trace as trace;
use deepburning_trace::json::Json;
use deepburning_verilog::{lint_design, Design, SimEngine, SimulateError, Simulator};
use std::collections::BTreeMap;
use std::fmt;

/// One of the four execution views.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// The `f32` software reference.
    Tensor,
    /// The bit-true fixed-point simulator.
    Functional,
    /// The generated RTL on the Verilog interpreter.
    Rtl,
    /// The analytic timing model (performance-counter comparisons).
    Timing,
    /// The full-network RTL run: the control-only top executes every
    /// phase in one continuous simulation, with activations marshalled
    /// through the real `input`/`spill`/`output` DRAM segments at the
    /// addresses the coordinator/AGU fabric emits.
    FullRtl,
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            View::Tensor => "tensor",
            View::Functional => "functional",
            View::Rtl => "rtl",
            View::Timing => "timing",
            View::FullRtl => "full-rtl",
        })
    }
}

/// A single element where two views disagree beyond their tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Layer where the views first part ways.
    pub layer: String,
    /// Layer kind tag (for the report).
    pub kind: String,
    /// The two views compared (lhs is the more-reference-like view).
    pub views: (View, View),
    /// Flat element index within the layer's output blob.
    pub index: usize,
    /// Value in the first view.
    pub lhs: f64,
    /// Value in the second view.
    pub rhs: f64,
    /// Allowed tolerance (0 for the bit-exact pair).
    pub tolerance: f64,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) [{}]: {} {} vs {} {} (tol {:.3e}) {}",
            self.layer,
            self.kind,
            self.index,
            self.views.0,
            self.lhs,
            self.views.1,
            self.rhs,
            self.tolerance,
            self.detail
        )
    }
}

/// Per-layer audit of what was compared and how tight it was.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerAudit {
    /// Layer name.
    pub layer: String,
    /// Layer kind tag.
    pub kind: String,
    /// Output elements checked functional↔RTL (bit-exact).
    pub rtl_checked: usize,
    /// Output elements checked tensor↔functional (bounded).
    pub ref_checked: usize,
    /// Elements skipped in the bounded comparison (saturated values,
    /// index-discretisation artifacts, poisoned upstream).
    pub ref_skipped: usize,
    /// The derived tensor↔functional bound (worst element bound for
    /// per-element rules).
    pub tolerance: f64,
    /// Largest tensor↔functional error actually observed.
    pub max_ref_error: f64,
    /// Why the bounded comparison was skipped wholesale, if it was.
    pub skip_reason: Option<&'static str>,
    /// The static range analysis chain-proved this layer free of
    /// saturation, so the bounded comparison drops its dynamic
    /// near-the-rail skip guard and audits every element.
    pub range_proven: bool,
}

/// Interpreter work attributed to one RTL block of the bank — makes the
/// diffcheck hotspot visible (settle passes over continuous assigns
/// dominate the wall time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlModuleStats {
    /// Block tag (`neuron`, `pool_max`, `lut:sigmoid`, …).
    pub module: String,
    /// Clock edges driven into the block.
    pub clock_edges: u64,
    /// Settle passes run over the block's continuous assigns.
    pub settle_passes: u64,
    /// Expression evaluations (assign re-evaluations + NBA commits).
    pub evals: u64,
}

/// The outcome of a three-view differential run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Network name.
    pub network: String,
    /// Budget tag if the run came from a generated design (`DB`, …).
    pub budget: String,
    /// Per-layer audits, in execution order.
    pub layers: Vec<LayerAudit>,
    /// Every divergence found (capped per layer; see audits for counts).
    pub divergences: Vec<Divergence>,
    /// Per-RTL-block interpreter work, descending by evaluation count.
    pub rtl_modules: Vec<RtlModuleStats>,
    /// The fourth-view counter cross-check (populated by [`diff_design`];
    /// `None` for plain [`diff_network`] runs, which have no generated
    /// `perf_counters` block to read).
    pub counters: Option<CounterCheck>,
    /// Per-layer static range proofs from the analyzer (what justified
    /// each audit's `range_proven` flag).
    pub range_proofs: Vec<RangeProof>,
    /// The full static-analysis report (populated by [`diff_design`],
    /// which has the compiled artifacts and netlist the passes need;
    /// `None` for plain [`diff_network`] runs). Divergence bundles carry
    /// it so a failing run ships its lint context alongside waveforms.
    pub lint: Option<AnalysisReport>,
    /// The fifth-view full-network RTL run (populated by [`diff_design`]
    /// when [`DiffOptions::full_rtl`] is set): the coordinator FSM and
    /// AGU programs drive one continuous simulation across every layer,
    /// with activations flowing through the real `input`/`spill` memory
    /// segments instead of per-layer re-marshalling.
    pub full_run: Option<crate::fullrun::FullRunReport>,
}

impl DiffReport {
    /// True when no view pair diverged anywhere.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// The first diverging layer/element, if any.
    pub fn first_divergence(&self) -> Option<&Divergence> {
        self.divergences.first()
    }

    /// Total elements checked bit-exactly against the RTL.
    pub fn rtl_checked(&self) -> usize {
        self.layers.iter().map(|l| l.rtl_checked).sum()
    }

    /// Layers whose bounded tensor↔functional comparison checked nothing
    /// at all — every element was skipped. These are the audit's blind
    /// spots; the static range analysis exists to shrink this list.
    pub fn skip_audited(&self) -> Vec<&LayerAudit> {
        self.layers
            .iter()
            .filter(|l| l.ref_checked == 0 && l.ref_skipped > 0)
            .collect()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential report: {}{}{}",
            self.network,
            if self.budget.is_empty() { "" } else { " @ " },
            self.budget
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<12} {:<12} rtl {:>5} exact | ref {:>5} cmp {:>4} skip | err {:.3e} <= tol {:.3e}{}",
                l.layer,
                l.kind,
                l.rtl_checked,
                l.ref_checked,
                l.ref_skipped,
                l.max_ref_error,
                l.tolerance,
                match (l.range_proven, l.skip_reason) {
                    (true, _) => " [range-proven]".to_string(),
                    (false, Some(r)) => format!(" ({r})"),
                    (false, None) => String::new(),
                }
            )?;
        }
        let blind = self.skip_audited();
        if !blind.is_empty() {
            writeln!(
                f,
                "  {} layers skip-audited ({})",
                blind.len(),
                blind
                    .iter()
                    .map(|l| format!(
                        "{}: {}",
                        l.layer,
                        l.skip_reason.unwrap_or("all elements near saturation")
                    ))
                    .collect::<Vec<_>>()
                    .join("; ")
            )?;
        }
        if self.divergences.is_empty() {
            writeln!(f, "  no divergences")?;
        }
        for d in &self.divergences {
            writeln!(f, "  DIVERGED: {d}")?;
        }
        if !self.rtl_modules.is_empty() {
            writeln!(f, "  rtl interpreter work:")?;
            for m in &self.rtl_modules {
                writeln!(
                    f,
                    "    {:<16} {:>8} edges {:>9} settles {:>12} evals",
                    m.module, m.clock_edges, m.settle_passes, m.evals
                )?;
            }
        }
        if let Some(c) = &self.counters {
            writeln!(
                f,
                "  perf counters: {} | cycles rtl {} vs analytic {} (slack {}) | macs {} reads {} writes {} bursts {}",
                if c.is_clean() { "clean" } else { "DIVERGED" },
                c.rtl.cycles,
                c.analytic.cycles,
                c.cycle_slack,
                c.rtl.mac_ops,
                c.rtl.buffer_reads,
                c.rtl.buffer_writes,
                c.rtl.agu_bursts,
            )?;
        }
        if let Some(lint) = &self.lint {
            let errors = lint.count_at(deepburning_lint::Severity::Error);
            let warnings = lint.count_at(deepburning_lint::Severity::Warning) - errors;
            writeln!(
                f,
                "  static analysis: {} error(s) {} warning(s) | {} range proofs",
                errors,
                warnings,
                lint.proofs.len()
            )?;
        }
        Ok(())
    }
}

/// Error raised while setting up or executing a differential run.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// The fixed-point simulator failed.
    Functional(FunctionalError),
    /// The `f32` reference failed.
    Reference(String),
    /// Elaborating or stepping block RTL failed.
    Rtl(String),
    /// A block failed the structural lint before interpretation.
    Lint(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Functional(e) => write!(f, "functional view: {e}"),
            DiffError::Reference(m) => write!(f, "tensor view: {m}"),
            DiffError::Rtl(m) => write!(f, "rtl view: {m}"),
            DiffError::Lint(m) => write!(f, "rtl lint: {m}"),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<FunctionalError> for DiffError {
    fn from(e: FunctionalError) -> Self {
        DiffError::Functional(e)
    }
}

impl From<SimulateError> for DiffError {
    fn from(e: SimulateError) -> Self {
        DiffError::Rtl(e.message)
    }
}

/// Knobs for a differential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffOptions {
    /// Maximum output positions per layer executed through the RTL view
    /// (positions are spread deterministically across the blob; layers at
    /// or under the cap are checked exhaustively).
    pub max_rtl_samples: usize,
    /// Cap on probes used for [`ApproxLut::max_error`] when deriving
    /// activation-table bounds.
    pub lut_error_probes: usize,
    /// Testing hook: flip the LSB of every RTL readback for the layer at
    /// this index in execution order, forcing a functional↔RTL divergence
    /// (exercises the divergence-artifact path end to end).
    pub inject_rtl_fault: Option<usize>,
    /// Per-phase beat cap for the performance-counter replay run by
    /// [`diff_design`] (see [`verify_counters`]). Larger caps tighten the
    /// cycle-counter slack at interpreter cost.
    pub counter_beat_cap: u64,
    /// Which simulation engine executes the RTL view: the levelized
    /// [`SimEngine::Compiled`] tape (default) or the tree-walking
    /// [`SimEngine::Tree`] reference. Both produce bit-identical
    /// divergence reports, counters and VCDs by construction.
    pub engine: SimEngine,
    /// Run the fifth view: the full-network RTL execution
    /// ([`crate::full_network_run`]) that chains the coordinator and AGU
    /// programs across every layer in one continuous simulation and
    /// cross-checks it against the chained per-layer views bit-exactly.
    /// Off by default — it replays the whole network through the
    /// interpreter a second time.
    pub full_rtl: bool,
    /// Enable the engine hot-spot profiler on the full-network run
    /// (requires `full_rtl`): per-level/per-opcode attribution comes
    /// back as [`crate::FullRunReport::profile`]. The counting engine
    /// loop is only entered when enabled, so this is free when off.
    pub profile: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            max_rtl_samples: 96,
            lut_error_probes: 1024,
            inject_rtl_fault: None,
            counter_beat_cap: crate::counters::DEFAULT_BEAT_CAP,
            engine: SimEngine::default(),
            full_rtl: false,
            profile: false,
        }
    }
}

/// Deterministic spread of up to `cap` indices over `0..n`.
fn sample_indices(n: usize, cap: usize) -> Vec<usize> {
    if n <= cap {
        (0..n).collect()
    } else {
        (0..cap).map(|i| i * n / cap).collect()
    }
}

pub(crate) fn kind_tag(kind: &LayerKind) -> &'static str {
    match kind {
        LayerKind::Input { .. } => "input",
        LayerKind::Convolution(_) => "conv",
        LayerKind::Pooling(_) => "pool",
        LayerKind::FullConnection(_) => "fc",
        LayerKind::Activation(_) => "act",
        LayerKind::Lrn(_) => "lrn",
        LayerKind::Dropout { .. } => "dropout",
        LayerKind::Memory { .. } => "memory",
        LayerKind::Recurrent { .. } => "recurrent",
        LayerKind::Associative { .. } => "assoc",
        LayerKind::Classifier { .. } => "classifier",
        LayerKind::Inception(_) => "inception",
        LayerKind::Concat => "concat",
        LayerKind::Eltwise => "eltwise",
    }
}

// ---------------------------------------------------------------------------
// The RTL view: generated blocks on the Verilog interpreter.
// ---------------------------------------------------------------------------

/// A bank of elaborated block RTL shared across layers of one run.
///
/// Every module is linted before elaboration; interpretation then *is* the
/// execution of the generated design's arithmetic, with the harness doing
/// the data marshalling the AGUs/coordinator perform in hardware.
struct RtlBank {
    fmt: QFormat,
    w: u32,
    mask: u64,
    lanes: u32,
    engine: SimEngine,
    neuron: Box<dyn Simulator>,
    relu: Box<dyn Simulator>,
    pool_max: Box<dyn Simulator>,
    pool_avg: Box<dyn Simulator>,
    cbox: Box<dyn Simulator>,
    sorter_inputs: u32,
    sorter: Box<dyn Simulator>,
    /// Approx-LUT interpolators keyed by image tag (`sigmoid`, `tanh`,
    /// `lrn:<layer>`).
    act_luts: BTreeMap<String, Box<dyn Simulator>>,
    /// LRN units keyed by layer name.
    lrn_units: BTreeMap<String, Box<dyn Simulator>>,
    /// Associative tables keyed by layer name.
    assoc_tables: BTreeMap<String, Box<dyn Simulator>>,
    /// When set, every simulator (including lazily elaborated ones)
    /// records a VCD waveform.
    vcd_enabled: bool,
}

fn elaborate_block(
    design: &Design,
    top: &str,
    engine: SimEngine,
) -> Result<Box<dyn Simulator>, DiffError> {
    let _span = trace::span("sim", "sim.rtl_elaborate");
    let lint = lint_design(design);
    if !lint.is_clean() {
        return Err(DiffError::Lint(format!("{top}: {lint}")));
    }
    Ok(engine.elaborate(design, top)?)
}

impl RtlBank {
    fn new(fmt: QFormat, design_lanes: u32, engine: SimEngine) -> Result<Self, DiffError> {
        let w = fmt.total_bits();
        // Bus widths must fit the interpreter's 64-bit signals; the wide
        // accumulator makes the dot product independent of lane grouping,
        // so a narrower bank computes the identical raw stream.
        let lanes = design_lanes.clamp(1, (64 / w).max(1));
        let neuron = SynergyNeuron {
            width: w,
            frac_bits: fmt.frac_bits(),
            lanes,
        };
        let relu = deepburning_components::ActivationUnit { width: w };
        let pmax = PoolingUnit {
            width: w,
            method: PoolMethod::Max,
        };
        let pavg = PoolingUnit {
            width: w,
            method: PoolMethod::Average,
        };
        let cbox = ConnectionBox {
            width: w,
            inputs: 1,
            outputs: 1,
        };
        let sorter_inputs = (64 / w).max(2);
        let sorter = KSorter {
            width: w,
            inputs: sorter_inputs,
        };
        let mut bank = RtlBank {
            fmt,
            w,
            mask: if w >= 64 { u64::MAX } else { (1u64 << w) - 1 },
            lanes,
            engine,
            neuron: elaborate_block(
                &Design::new(neuron.generate()),
                &neuron.module_name(),
                engine,
            )?,
            relu: elaborate_block(&Design::new(relu.generate()), &relu.module_name(), engine)?,
            pool_max: elaborate_block(&Design::new(pmax.generate()), &pmax.module_name(), engine)?,
            pool_avg: elaborate_block(&Design::new(pavg.generate()), &pavg.module_name(), engine)?,
            cbox: elaborate_block(&Design::new(cbox.generate()), &cbox.module_name(), engine)?,
            sorter_inputs,
            sorter: elaborate_block(
                &Design::new(sorter.generate()),
                &sorter.module_name(),
                engine,
            )?,
            act_luts: BTreeMap::new(),
            lrn_units: BTreeMap::new(),
            assoc_tables: BTreeMap::new(),
            vcd_enabled: false,
        };
        for sim in [&mut bank.neuron, &mut bank.pool_max, &mut bank.pool_avg] {
            sim.poke("rst", 1)?;
            sim.clock()?;
            sim.poke("rst", 0)?;
            sim.poke("en", 0)?;
            sim.poke("clear", 0)?;
        }
        Ok(bank)
    }

    /// Every block simulator, tagged. Lazily elaborated blocks appear
    /// once created.
    fn modules_mut(&mut self) -> Vec<(String, &mut dyn Simulator)> {
        let mut mods: Vec<(String, &mut dyn Simulator)> = vec![
            ("neuron".to_string(), self.neuron.as_mut()),
            ("relu".to_string(), self.relu.as_mut()),
            ("pool_max".to_string(), self.pool_max.as_mut()),
            ("pool_avg".to_string(), self.pool_avg.as_mut()),
            ("cbox".to_string(), self.cbox.as_mut()),
            ("sorter".to_string(), self.sorter.as_mut()),
        ];
        mods.extend(
            self.act_luts
                .iter_mut()
                .map(|(k, v)| (format!("lut:{k}"), v.as_mut() as &mut dyn Simulator)),
        );
        mods.extend(
            self.lrn_units
                .iter_mut()
                .map(|(k, v)| (format!("lrn:{k}"), v.as_mut() as &mut dyn Simulator)),
        );
        mods.extend(
            self.assoc_tables
                .iter_mut()
                .map(|(k, v)| (format!("assoc:{k}"), v.as_mut() as &mut dyn Simulator)),
        );
        mods
    }

    /// Turns on VCD recording for every block (existing and future).
    fn enable_vcd(&mut self) {
        self.vcd_enabled = true;
        for (name, sim) in self.modules_mut() {
            sim.vcd_begin(&name.replace(':', "_"));
        }
    }

    /// Ends recording and returns `(tag, vcd text)` for every block that
    /// was actually exercised (more than the initial dump).
    fn collect_vcds(&mut self) -> Vec<(String, String)> {
        self.modules_mut()
            .into_iter()
            .filter_map(|(name, sim)| {
                let exercised = sim.vcd_timesteps() > 1;
                sim.vcd_end().filter(|_| exercised).map(|text| (name, text))
            })
            .collect()
    }

    /// Interpreter work per block, descending by evaluation count; idle
    /// blocks are omitted.
    fn module_stats(&mut self) -> Vec<RtlModuleStats> {
        let mut out: Vec<RtlModuleStats> = self
            .modules_mut()
            .into_iter()
            .map(|(module, sim)| {
                let s = sim.stats();
                RtlModuleStats {
                    module,
                    clock_edges: s.clock_edges,
                    settle_passes: s.settle_passes,
                    evals: s.evals(),
                }
            })
            .filter(|m| m.evals > 0)
            .collect();
        out.sort_by_key(|m| std::cmp::Reverse(m.evals));
        out
    }

    fn to_fx(&self, bus: u64) -> Fx {
        let raw = bus & self.mask;
        let signed = if self.w < 64 && raw >> (self.w - 1) & 1 == 1 {
            raw as i64 - (1i64 << self.w)
        } else {
            raw as i64
        };
        Fx::from_raw(signed, self.fmt)
    }

    /// Streams `(feature, weight)` pairs through the synergy-neuron bank
    /// and returns the resolved, saturated dot product.
    fn dot(&mut self, pairs: &[(Fx, Fx)]) -> Result<Fx, DiffError> {
        let sim = &mut self.neuron;
        sim.poke("en", 0)?;
        sim.poke("clear", 1)?;
        sim.clock()?;
        sim.poke("clear", 0)?;
        sim.poke("en", 1)?;
        for beat in pairs.chunks(self.lanes as usize) {
            let mut fbus = 0u64;
            let mut wbus = 0u64;
            for (lane, (fv, wv)) in beat.iter().enumerate() {
                fbus |= (fv.raw() as u64 & self.mask) << (lane as u32 * self.w);
                wbus |= (wv.raw() as u64 & self.mask) << (lane as u32 * self.w);
            }
            sim.poke("din", fbus)?;
            sim.poke("weight", wbus)?;
            sim.clock()?;
        }
        sim.poke("en", 0)?;
        let out = sim.read("sum_out")?;
        Ok(self.to_fx(out))
    }

    /// Fixed-point saturating add through a two-beat neuron pass
    /// (`a*1 + b*1`), mirroring the eltwise merge.
    fn add(&mut self, a: Fx, b: Fx) -> Result<Fx, DiffError> {
        let one = Fx::one(self.fmt);
        self.dot(&[(a, one), (b, one)])
    }

    fn relu_eval(&mut self, x: Fx) -> Result<Fx, DiffError> {
        self.relu.poke("din", x.raw() as u64 & self.mask)?;
        let out = self.relu.read("dout")?;
        self.relu.vcd_sample_now();
        Ok(self.to_fx(out))
    }

    /// Reduces a window through the streaming pooling unit. For `Max` the
    /// result is the pooled value; for `Average` it is the saturated sum
    /// (division happens downstream, as in hardware).
    fn pool_reduce(&mut self, method: PoolMethod, window: &[Fx]) -> Result<Fx, DiffError> {
        let mask = self.mask;
        let sim = match method {
            PoolMethod::Max => &mut self.pool_max,
            PoolMethod::Average => &mut self.pool_avg,
        };
        sim.poke("en", 0)?;
        sim.poke("clear", 1)?;
        sim.clock()?;
        sim.poke("clear", 0)?;
        sim.poke("en", 1)?;
        for v in window {
            sim.poke("din", v.raw() as u64 & mask)?;
            sim.clock()?;
        }
        sim.poke("en", 0)?;
        let out = sim.read("dout")?;
        Ok(self.to_fx(out))
    }

    /// Arithmetic right shift through the connection box's shifting latch
    /// (the power-of-two average divider).
    fn shift_div(&mut self, x: Fx, shift: u32) -> Result<Fx, DiffError> {
        debug_assert!(shift < 16, "shift field is 4 bits");
        self.cbox.poke("din", x.raw() as u64 & self.mask)?;
        self.cbox.poke("sel", 0)?;
        self.cbox.poke("shift", u64::from(shift))?;
        self.cbox.clock()?;
        let out = self.cbox.read("dout")?;
        Ok(self.to_fx(out))
    }

    /// Evaluates an Approx-LUT image through the generated interpolator.
    fn lut_eval(&mut self, tag: &str, image: &ApproxLut, x: Fx) -> Result<Fx, DiffError> {
        if !self.act_luts.contains_key(tag) {
            let block = ApproxLutBlock::new(self.w, image.clone());
            let mut sim = elaborate_block(
                &Design::new(block.generate()),
                &block.module_name(),
                self.engine,
            )?;
            let (keys, vals) = block.rom_words();
            sim.load_memory("key_rom", &keys)?;
            sim.load_memory("val_rom", &vals)?;
            if self.vcd_enabled {
                sim.vcd_begin(&format!("lut_{tag}").replace(':', "_"));
            }
            self.act_luts.insert(tag.to_string(), sim);
        }
        let sim = self.act_luts.get_mut(tag).expect("just inserted");
        sim.poke("din", x.raw() as u64 & self.mask)?;
        let out = sim.read("dout")?;
        sim.vcd_sample_now();
        Ok(self.to_fx(out))
    }

    /// Runs the LRN unit: stream the squared-energy window, then present
    /// the centre value and read the normalised output.
    fn lrn_eval(
        &mut self,
        layer: &str,
        image: &ApproxLut,
        local_size: usize,
        centre: Fx,
        window: &[Fx],
    ) -> Result<Fx, DiffError> {
        if !self.lrn_units.contains_key(layer) {
            let unit = LrnUnit {
                width: self.w,
                local_size,
                factor_lut: image.clone(),
            };
            let lut_block = ApproxLutBlock::new(self.w, image.clone());
            let mut d = Design::new(unit.generate());
            d.add_module(lut_block.generate());
            let mut sim = elaborate_block(&d, &unit.module_name(), self.engine)?;
            let (keys, vals) = lut_block.rom_words();
            sim.load_memory("u_factor_lut.key_rom", &keys)?;
            sim.load_memory("u_factor_lut.val_rom", &vals)?;
            if self.vcd_enabled {
                sim.vcd_begin("lrn_unit");
            }
            self.lrn_units.insert(layer.to_string(), sim);
        }
        let sim = self.lrn_units.get_mut(layer).expect("just inserted");
        sim.poke("rst", 1)?;
        sim.clock()?;
        sim.poke("rst", 0)?;
        sim.poke("en", 1)?;
        for v in window {
            sim.poke("din", v.raw() as u64 & self.mask)?;
            sim.clock()?;
        }
        sim.poke("en", 0)?;
        sim.poke("centre", centre.raw() as u64 & self.mask)?;
        let out = sim.read("dout")?;
        sim.vcd_sample_now();
        Ok(self.to_fx(out))
    }

    /// Reads one word of an associative table through buffer RTL.
    fn assoc_lookup(&mut self, layer: &str, table: &[Fx], index: usize) -> Result<Fx, DiffError> {
        if !self.assoc_tables.contains_key(layer) {
            let block = BufferBlock {
                width: self.w,
                depth: table.len().max(2),
            };
            let mut sim = elaborate_block(
                &Design::new(block.generate()),
                &block.module_name(),
                self.engine,
            )?;
            let words: Vec<u64> = table.iter().map(|v| v.raw() as u64 & self.mask).collect();
            sim.load_memory("mem", &words)?;
            sim.poke("we", 0)?;
            sim.poke("waddr", 0)?;
            sim.poke("wdata", 0)?;
            if self.vcd_enabled {
                sim.vcd_begin("assoc_table");
            }
            self.assoc_tables.insert(layer.to_string(), sim);
        }
        let sim = self.assoc_tables.get_mut(layer).expect("just inserted");
        sim.poke("raddr", index as u64)?;
        sim.clock()?;
        let out = sim.read("rdata")?;
        Ok(self.to_fx(out))
    }

    /// Argmax over `(global index, raw)` candidates via a K-sorter
    /// tournament; strict comparisons keep the earliest index on ties.
    fn argmax(&mut self, values: &[(usize, i64)]) -> Result<usize, DiffError> {
        assert!(!values.is_empty(), "argmax of empty candidate set");
        let mut cands: Vec<(usize, i64)> = values.to_vec();
        while cands.len() > 1 {
            let mut next = Vec::with_capacity(cands.len().div_ceil(self.sorter_inputs as usize));
            for chunk in cands.chunks(self.sorter_inputs as usize) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let mut bus = 0u64;
                for (slot, v) in (0..self.sorter_inputs as usize)
                    // Pad slots repeat the first element: a strict compare
                    // can never pick the duplicate over the original.
                    .map(|i| chunk.get(i).unwrap_or(&chunk[0]))
                    .enumerate()
                {
                    bus |= (v.1 as u64 & self.mask) << (slot as u32 * self.w);
                }
                self.sorter.poke("din", bus)?;
                let local = self.sorter.read("idx_out")? as usize;
                self.sorter.vcd_sample_now();
                next.push(chunk[local.min(chunk.len() - 1)]);
            }
            cands = next;
        }
        Ok(cands[0].0)
    }

    /// Top-k indices, repeating the selection network and withdrawing each
    /// winner — the scheduled classifier.
    fn topk(&mut self, raws: &[i64], k: usize) -> Result<Vec<usize>, DiffError> {
        let mut cands: Vec<(usize, i64)> = raws.iter().copied().enumerate().collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k.min(cands.len()) {
            let win = self.argmax(&cands)?;
            out.push(win);
            cands.retain(|(i, _)| *i != win);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Per-layer RTL execution.
// ---------------------------------------------------------------------------

/// Executes `layer` through block RTL at sampled output positions and
/// compares bit-exactly against the functional output. Returns the number
/// of positions checked; divergences are appended to `divs`.
#[allow(clippy::too_many_arguments)]
fn rtl_check_layer(
    bank: &mut RtlBank,
    layer: &Layer,
    bottoms: &[&FxBlob],
    fx_out: &FxBlob,
    weights: &WeightSet,
    luts: &LutImages,
    opts: &DiffOptions,
    inject_fault: bool,
    divs: &mut Vec<Divergence>,
) -> Result<usize, DiffError> {
    let fmt = bank.fmt;
    let one = Fx::one(fmt);
    let cap = opts.max_rtl_samples.max(1);
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    let mut check = |idx: usize, got: Fx, want: Fx, divs: &mut Vec<Divergence>| {
        // The fault-injection hook corrupts the RTL readback's LSB so the
        // divergence-artifact machinery can be exercised on demand.
        let got = if inject_fault {
            Fx::from_raw(got.raw() ^ 1, fmt)
        } else {
            got
        };
        checked += 1;
        if got.raw() != want.raw() {
            mismatches += 1;
            if mismatches <= 4 {
                divs.push(Divergence {
                    layer: layer.name.clone(),
                    kind: kind_tag(&layer.kind).to_string(),
                    views: (View::Functional, View::Rtl),
                    index: idx,
                    lhs: want.to_f64(),
                    rhs: got.to_f64(),
                    tolerance: 0.0,
                    detail: format!("raw {:#x} vs {:#x}", want.raw(), got.raw()),
                });
            }
        }
    };
    let lw = || {
        weights.get(&layer.name).ok_or_else(|| {
            DiffError::Functional(FunctionalError {
                layer: layer.name.clone(),
                detail: "weights missing".into(),
            })
        })
    };
    match &layer.kind {
        // Pure data movement: nothing to execute.
        LayerKind::Input { .. }
        | LayerKind::Concat
        | LayerKind::Dropout { .. }
        | LayerKind::Memory { .. } => {}
        LayerKind::Activation(Activation::Identity) => {}
        LayerKind::Convolution(p) => {
            let src = bottoms[0];
            let w = quantize_weights(&lw()?.w, fmt);
            let b = quantize_weights(&lw()?.b, fmt);
            let cig = src.shape.channels / p.group;
            let cog = p.num_output / p.group;
            let (oh, ow) = (fx_out.shape.height, fx_out.shape.width);
            for idx in sample_indices(fx_out.data.len(), cap) {
                let co = idx / (oh * ow);
                let oy = idx / ow % oh;
                let ox = idx % ow;
                let g = co / cog;
                let mut pairs = Vec::with_capacity(cig * p.kernel_size * p.kernel_size + 1);
                if let Some(bias) = b.get(co) {
                    pairs.push((*bias, one));
                }
                for icg in 0..cig {
                    let ic = g * cig + icg;
                    for ky in 0..p.kernel_size {
                        for kx in 0..p.kernel_size {
                            let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            let wv =
                                w[((co * cig + icg) * p.kernel_size + ky) * p.kernel_size + kx];
                            pairs.push((src.get_padded(fmt, ic, iy, ix), wv));
                        }
                    }
                }
                let got = bank.dot(&pairs)?;
                check(idx, got, fx_out.data[idx], divs);
            }
        }
        LayerKind::FullConnection(p) => {
            let src = bottoms[0].clone().flat();
            let lw = lw()?;
            let n = src.data.len();
            // Quantise only the sampled rows: materialising the full
            // matrix costs more than every sampled dot product combined
            // on the large FC layers.
            for o in sample_indices(p.num_output, cap) {
                let mut pairs = Vec::with_capacity(n + 1);
                if let Some(bias) = lw.b.get(o) {
                    pairs.push((Fx::from_f64(f64::from(*bias), fmt), one));
                }
                for (x, wv) in src.data.iter().zip(&lw.w[o * n..(o + 1) * n]) {
                    pairs.push((*x, Fx::from_f64(f64::from(*wv), fmt)));
                }
                let got = bank.dot(&pairs)?;
                check(o, got, fx_out.data[o], divs);
            }
        }
        LayerKind::Activation(a) => {
            let src = bottoms[0];
            for idx in sample_indices(fx_out.data.len(), cap) {
                let x = src.data[idx];
                let got = match a {
                    Activation::Relu => bank.relu_eval(x)?,
                    Activation::Sigmoid => {
                        let image = luts.get("sigmoid").expect("checked by functional view");
                        bank.lut_eval("sigmoid", image, x)?
                    }
                    Activation::Tanh => {
                        let image = luts.get("tanh").expect("checked by functional view");
                        bank.lut_eval("tanh", image, x)?
                    }
                    Activation::Identity => unreachable!("identity handled above"),
                };
                check(idx, got, fx_out.data[idx], divs);
            }
        }
        LayerKind::Pooling(p) => {
            let src = bottoms[0];
            let (oh, ow) = (fx_out.shape.height, fx_out.shape.width);
            let window = p.kernel_size * p.kernel_size;
            let recip = Fx::from_f64(1.0 / window as f64, fmt);
            for idx in sample_indices(fx_out.data.len(), cap) {
                let c = idx / (oh * ow);
                let oy = idx / ow % oh;
                let ox = idx % ow;
                let mut vals = Vec::with_capacity(window);
                for ky in 0..p.kernel_size {
                    for kx in 0..p.kernel_size {
                        vals.push(src.get(c, oy * p.stride + ky, ox * p.stride + kx));
                    }
                }
                let reduced = bank.pool_reduce(p.method, &vals)?;
                let got = match p.method {
                    PoolMethod::Max => reduced,
                    PoolMethod::Average => {
                        if window.is_power_of_two() {
                            bank.shift_div(reduced, window.trailing_zeros())?
                        } else {
                            // Reciprocal multiply on a single neuron lane.
                            bank.dot(&[(reduced, recip)])?
                        }
                    }
                };
                check(idx, got, fx_out.data[idx], divs);
            }
        }
        LayerKind::Lrn(p) => {
            let src = bottoms[0];
            let image = luts
                .get(&format!("lrn:{}", layer.name))
                .expect("checked by functional view");
            let s = src.shape;
            let half = p.local_size / 2;
            for idx in sample_indices(fx_out.data.len(), cap) {
                let c = idx / (s.height * s.width);
                let y = idx / s.width % s.height;
                let x = idx % s.width;
                let lo = c.saturating_sub(half);
                let hi = (c + half).min(s.channels - 1);
                let window: Vec<Fx> = (lo..=hi).map(|cc| src.get(cc, y, x)).collect();
                let got =
                    bank.lrn_eval(&layer.name, image, p.local_size, src.get(c, y, x), &window)?;
                check(idx, got, fx_out.data[idx], divs);
            }
        }
        LayerKind::Recurrent { num_output, steps } => {
            let src = bottoms[0].clone().flat();
            let w = quantize_weights(&lw()?.w, fmt);
            let b = quantize_weights(&lw()?.b, fmt);
            let tanh = luts.get("tanh").expect("checked by functional view");
            let n_in = src.data.len();
            let mut h = vec![Fx::zero(fmt); *num_output];
            for _ in 0..(*steps).max(1) {
                let mut next = vec![Fx::zero(fmt); *num_output];
                for (o, slot) in next.iter_mut().enumerate() {
                    let row = &w[o * (n_in + num_output)..(o + 1) * (n_in + num_output)];
                    let mut pairs = Vec::with_capacity(n_in + num_output + 1);
                    if let Some(bias) = b.get(o) {
                        pairs.push((*bias, one));
                    }
                    for (x, wv) in src.data.iter().zip(&row[..n_in]) {
                        pairs.push((*x, *wv));
                    }
                    for (hv, wv) in h.iter().zip(&row[n_in..]) {
                        pairs.push((*hv, *wv));
                    }
                    let s = bank.dot(&pairs)?;
                    *slot = bank.lut_eval("tanh", tanh, s)?;
                }
                h = next;
            }
            for (o, v) in h.iter().enumerate() {
                check(o, *v, fx_out.data[o], divs);
            }
        }
        LayerKind::Associative {
            table_size,
            active_cells,
        } => {
            let src = bottoms[0];
            let table = quantize_weights(&lw()?.w, fmt);
            let x: Vec<f32> = src.data.iter().map(|v| v.to_f64() as f32).collect();
            for slot in 0..*active_cells {
                let idx = cmac_index(&x, slot, *active_cells, *table_size);
                let got = bank.assoc_lookup(&layer.name, &table, idx)?;
                check(slot, got, fx_out.data[slot], divs);
            }
        }
        LayerKind::Classifier { top_k } => {
            let raws: Vec<i64> = bottoms[0].data.iter().map(|v| v.raw()).collect();
            let winners = bank.topk(&raws, *top_k)?;
            for (i, win) in winners.iter().enumerate() {
                let got = Fx::from_f64(*win as f64, fmt);
                check(i, got, fx_out.data[i], divs);
            }
        }
        LayerKind::Inception(p) => {
            let src = bottoms[0];
            let ci = src.shape.channels;
            let w = quantize_weights(&lw()?.w, fmt);
            let b = quantize_weights(&lw()?.b, fmt);
            let w1_end = p.c1x1 * ci;
            let w3_end = w1_end + p.c3x3 * ci * 9;
            let w5_end = w3_end + p.c5x5 * ci * 25;
            let (h, wd) = (src.shape.height, src.shape.width);
            for idx in sample_indices(fx_out.data.len(), cap) {
                let co = idx / (h * wd);
                let y = idx / wd % h;
                let x = idx % wd;
                // Which branch owns this output channel?
                let (kernel, pad, local_co, wofs, bofs, pooled) = if co < p.c1x1 {
                    (1usize, 0usize, co, 0usize, 0usize, false)
                } else if co < p.c1x1 + p.c3x3 {
                    (3, 1, co - p.c1x1, w1_end, p.c1x1, false)
                } else if co < p.c1x1 + p.c3x3 + p.c5x5 {
                    (5, 2, co - p.c1x1 - p.c3x3, w3_end, p.c1x1 + p.c3x3, false)
                } else {
                    (
                        1,
                        0,
                        co - p.c1x1 - p.c3x3 - p.c5x5,
                        w5_end,
                        p.c1x1 + p.c3x3 + p.c5x5,
                        true,
                    )
                };
                let mut pairs = Vec::with_capacity(ci * kernel * kernel + 1);
                if let Some(bias) = b.get(bofs + local_co) {
                    pairs.push((*bias, one));
                }
                for ic in 0..ci {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = (y + ky) as isize - pad as isize;
                            let ix = (x + kx) as isize - pad as isize;
                            let wv = w[wofs + ((local_co * ci + ic) * kernel + ky) * kernel + kx];
                            let xv = if pooled {
                                // Pool branch: clamped 3x3 max around the
                                // position, reduced through pooling RTL.
                                let mut vals = Vec::with_capacity(9);
                                for dy in -1isize..=1 {
                                    for dx in -1isize..=1 {
                                        let yy = y as isize + dy;
                                        let xx = x as isize + dx;
                                        if yy >= 0
                                            && xx >= 0
                                            && (yy as usize) < h
                                            && (xx as usize) < wd
                                        {
                                            vals.push(src.get(ic, yy as usize, xx as usize));
                                        }
                                    }
                                }
                                bank.pool_reduce(PoolMethod::Max, &vals)?
                            } else {
                                src.get_padded(fmt, ic, iy, ix)
                            };
                            pairs.push((xv, wv));
                        }
                    }
                }
                let got = bank.dot(&pairs)?;
                check(idx, got, fx_out.data[idx], divs);
            }
        }
        LayerKind::Eltwise => {
            for idx in sample_indices(fx_out.data.len(), cap) {
                let mut acc = bottoms[0].data[idx];
                for bottom in &bottoms[1..] {
                    acc = bank.add(acc, bottom.data[idx])?;
                }
                check(idx, acc, fx_out.data[idx], divs);
            }
        }
    }
    Ok(checked)
}

// ---------------------------------------------------------------------------
// Tensor ↔ functional: derived error bounds.
// ---------------------------------------------------------------------------

fn absmax(t: &Tensor) -> f64 {
    t.as_slice()
        .iter()
        .map(|v| f64::from(v.abs()))
        .fold(0.0, f64::max)
}

/// The bound a MAC reduction adds: `terms` products of `|x| <= xmax`
/// against quantised weights, plus bias quantisation and readout
/// truncation.
///
/// Per product, `|ŵx̂ − wx| <= (|w| + q)·tol_in + |x|·q`. Summed over a
/// row, the weight-magnitude factor is the row's L1 norm, so the input
/// error amplifies by `min(w1, terms·wmax)` — `w1` (the worst per-row L1
/// norm) is never larger than `terms·wmax` and is drastically tighter
/// for layers whose weights are not all at the maximum. Callers without
/// the row layout pass `f64::INFINITY` to fall back to the per-term
/// product bound.
fn mac_bound(terms: usize, xmax: f64, wmax: f64, w1: f64, tol_in: f64, fmt: QFormat) -> f64 {
    let ulp = fmt.resolution();
    let q = ulp / 2.0;
    let gain = w1.min(terms as f64 * wmax);
    terms as f64 * (xmax + tol_in) * q + gain * tol_in + q + ulp
}

/// Worst per-row raw L1 norm of a weight matrix stored as consecutive
/// rows of `row_len`, or `INFINITY` when the layout is unknown.
fn row_l1_max(w: &[f32], row_len: usize) -> f64 {
    if row_len == 0 || w.is_empty() {
        return f64::INFINITY;
    }
    w.chunks(row_len)
        .map(|row| row.iter().map(|v| f64::from(v.abs())).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Largest absolute stored value of a LUT image — interpolation never
/// exceeds the endpoint samples, so this bounds the LUT output for *any*
/// input. `INFINITY` when the image is absent (no cap available).
fn lut_cap(luts: &LutImages, tag: &str) -> f64 {
    luts.get(tag)
        .map(|img| {
            img.values()
                .iter()
                .map(|v| v.to_f64().abs())
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(f64::INFINITY)
}

/// How the tensor↔functional comparison treats a layer.
enum RefRule {
    /// Compare every element against a scalar bound.
    Scalar(f64),
    /// Compare with per-element bounds (f64::INFINITY skips the element).
    PerElement(Vec<f64>),
    /// Skip the whole layer and poison its tops (index-valued outputs).
    Skip(&'static str),
}

/// Derives the tensor↔functional bound for one layer from the format
/// resolution, the layer's fan-in/weight magnitudes and the Approx-LUT
/// image errors.
#[allow(clippy::too_many_arguments)]
fn derive_ref_rule(
    layer: &Layer,
    ref_ins: &[&Tensor],
    ref_out: &Tensor,
    fx_ins: &[&FxBlob],
    weights: &WeightSet,
    luts: &LutImages,
    fmt: QFormat,
    tol_in: f64,
    opts: &DiffOptions,
) -> RefRule {
    let ulp = fmt.resolution();
    let q = ulp / 2.0;
    let xmax = ref_ins.first().map(|t| absmax(t)).unwrap_or(0.0);
    let wmax = weights
        .get(&layer.name)
        .map(|lw| lw.w.iter().map(|v| f64::from(v.abs())).fold(0.0, f64::max))
        .unwrap_or(0.0);
    match &layer.kind {
        LayerKind::Input { .. } => RefRule::Scalar(q),
        LayerKind::Dropout { .. } | LayerKind::Memory { .. } => RefRule::Scalar(tol_in),
        LayerKind::Concat => RefRule::Scalar(tol_in),
        LayerKind::Eltwise => RefRule::Scalar(ref_ins.len() as f64 * tol_in),
        LayerKind::Convolution(p) => {
            let src = &ref_ins[0];
            let cig = src.shape().channels / p.group;
            let row = cig * p.kernel_size * p.kernel_size;
            let w1 = weights
                .get(&layer.name)
                .map_or(f64::INFINITY, |lw| row_l1_max(&lw.w, row));
            RefRule::Scalar(mac_bound(row + 1, xmax, wmax, w1, tol_in, fmt))
        }
        LayerKind::FullConnection(_) => {
            let n = ref_ins[0].shape().elements();
            let w1 = weights
                .get(&layer.name)
                .map_or(f64::INFINITY, |lw| row_l1_max(&lw.w, n));
            RefRule::Scalar(mac_bound(n + 1, xmax, wmax, w1, tol_in, fmt))
        }
        LayerKind::Inception(_) => {
            // The per-bank row layouts are heterogeneous; fall back to
            // the per-term product bound.
            let ci = ref_ins[0].shape().channels;
            let terms = (ci * 25).max(ci * 9).max(ci) + 1;
            RefRule::Scalar(mac_bound(terms, xmax, wmax, f64::INFINITY, tol_in, fmt))
        }
        LayerKind::Pooling(p) => {
            let n = p.kernel_size * p.kernel_size;
            match p.method {
                PoolMethod::Max => RefRule::Scalar(tol_in),
                PoolMethod::Average => {
                    if n.is_power_of_two() {
                        RefRule::Scalar(tol_in + 2.0 * ulp)
                    } else {
                        // Quantised-reciprocal multiply: the sum magnitude
                        // scales the reciprocal's quantisation error.
                        let smax = (n as f64 * (xmax + tol_in)).min(fmt.max_value());
                        RefRule::Scalar(tol_in + smax * q + 2.0 * ulp)
                    }
                }
            }
        }
        LayerKind::Activation(a) => match a {
            Activation::Relu | Activation::Identity => RefRule::Scalar(tol_in),
            Activation::Sigmoid | Activation::Tanh => {
                let tag = if *a == Activation::Sigmoid {
                    "sigmoid"
                } else {
                    "tanh"
                };
                let act = *a;
                let lut_err = luts
                    .get(tag)
                    .map(|img| img.max_error(move |x| act.eval(x), opts.lut_error_probes))
                    .unwrap_or(0.0);
                // Both activations are 1-Lipschitz (sigmoid tighter),
                // and both outputs are bounded: the reference by 1, the
                // quantised view by the LUT's largest stored sample. The
                // error can never exceed their sum, which stops upstream
                // tolerance from compounding through squashing layers.
                let cap = 1.0 + lut_cap(luts, tag);
                RefRule::Scalar((tol_in + lut_err + ulp).min(cap))
            }
        },
        LayerKind::Lrn(p) => {
            let src = &ref_ins[0];
            let fx_src = fx_ins[0];
            let image = match luts.get(&format!("lrn:{}", layer.name)) {
                Some(i) => i,
                None => return RefRule::Skip("lrn lut missing"),
            };
            let (alpha, beta, n) = (p.alpha, p.beta, p.local_size as f64);
            let lut_err = image.max_error(
                move |s| (1.0 + alpha / n * s).powf(-beta),
                opts.lut_error_probes,
            );
            let lut_hi = image.keys()[image.entries() - 1].to_f64();
            // Max |d/ds (1 + a/n s)^-b| is at s = 0.
            let slope = beta * alpha / n;
            let s = src.shape();
            let half = p.local_size / 2;
            let data = src.as_slice();
            let mut bounds = vec![0.0f64; ref_out.shape().elements()];
            for c in 0..s.channels {
                let lo = c.saturating_sub(half);
                let hi = (c + half).min(s.channels - 1);
                for y in 0..s.height {
                    for x in 0..s.width {
                        let at = (c * s.height + y) * s.width + x;
                        let mut energy = 0.0f64;
                        for cc in lo..=hi {
                            let v = f64::from(data[(cc * s.height + y) * s.width + x]);
                            energy += v * v;
                        }
                        let m = (hi - lo + 1) as f64;
                        let tol_e = m * tol_in * (2.0 * xmax + tol_in) + ulp;
                        // Near or past the table's top key the functional
                        // energy clamps; the factor there is tail-flat but
                        // not bounded by local analysis — skip.
                        let fx_energy_rail =
                            fx_ins.first().is_some_and(|_| energy + tol_e >= lut_hi);
                        bounds[at] = if fx_energy_rail {
                            f64::INFINITY
                        } else {
                            let factor_err = lut_err + slope * tol_e + ulp;
                            let centre = f64::from(data[at]).abs();
                            centre * factor_err + (1.0 + factor_err) * tol_in + ulp
                        };
                        // (fx_src is only used to keep the signature
                        // honest; the rail test is on the reference
                        // energy, which dominates the clamped one.)
                        let _ = fx_src;
                    }
                }
            }
            RefRule::PerElement(bounds)
        }
        LayerKind::Recurrent { num_output, steps } => {
            let n_in = ref_ins[0].shape().elements();
            let w1 = weights
                .get(&layer.name)
                .map_or(f64::INFINITY, |lw| row_l1_max(&lw.w, n_in + num_output));
            let tanh_err = luts
                .get("tanh")
                .map(|img| img.max_error(|x| x.tanh(), opts.lut_error_probes))
                .unwrap_or(0.0);
            // Every step squashes the state through the tanh LUT: the
            // reference state is bounded by 1 and the quantised one by
            // the LUT's largest stored sample, so the per-step error is
            // capped and cannot compound exponentially across steps.
            let cap = 1.0 + lut_cap(luts, "tanh");
            let mut tol_h = 0.0f64;
            for _ in 0..(*steps).max(1) {
                let pre = mac_bound(n_in, xmax, wmax, w1, tol_in, fmt)
                    + mac_bound(*num_output, 1.0, wmax, w1, tol_h, fmt);
                tol_h = (pre + tanh_err + ulp).min(cap);
            }
            RefRule::Scalar(tol_h)
        }
        LayerKind::Associative { .. } => {
            RefRule::Skip("table addressing is discretisation-sensitive")
        }
        LayerKind::Classifier { .. } => RefRule::Skip("rank order is discretisation-sensitive"),
    }
}

// ---------------------------------------------------------------------------
// The walk.
// ---------------------------------------------------------------------------

/// Runs one input through all three execution views layer by layer and
/// cross-checks them.
///
/// `design_lanes` scales the RTL neuron bank (capped so buses fit the
/// interpreter); pass the compiled configuration's lane count.
///
/// # Errors
///
/// Returns [`DiffError`] if any view fails to *execute* (missing weights
/// or LUTs, lint or interpreter errors). Divergences between views are
/// reported in the returned [`DiffReport`], not as errors.
pub fn diff_network(
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    luts: &LutImages,
    fmt: QFormat,
    design_lanes: u32,
    opts: &DiffOptions,
) -> Result<DiffReport, DiffError> {
    if input.shape() != net.input_shape() {
        return Err(DiffError::Reference("input shape mismatch".into()));
    }
    let mut bank = RtlBank::new(fmt, design_lanes, opts.engine)?;
    let mut ref_blobs: BTreeMap<String, Tensor> = BTreeMap::new();
    let mut fx_blobs: BTreeMap<String, FxBlob> = BTreeMap::new();
    let mut tol: BTreeMap<String, f64> = BTreeMap::new();
    let mut poisoned: BTreeMap<String, bool> = BTreeMap::new();
    // Static range analysis over the actual stimulus bound: chain-proven
    // layers provably never saturate, so their bounded comparison can
    // audit every element instead of skipping values near the rail.
    let input_bound = absmax(input) + fmt.resolution();
    let (range_proofs, _) = analyze_ranges(net, weights, Some(luts), fmt, input_bound);
    let chain_proven: std::collections::BTreeSet<&str> = range_proofs
        .iter()
        .filter(|p| p.chain_proven)
        .map(|p| p.layer.as_str())
        .collect();
    let mut report = DiffReport {
        network: net.name().to_string(),
        budget: String::new(),
        layers: Vec::new(),
        divergences: Vec::new(),
        rtl_modules: Vec::new(),
        counters: None,
        range_proofs: Vec::new(),
        lint: None,
        full_run: None,
    };
    let _span = trace::span("sim", "sim.diff");
    for (layer_idx, layer) in net.layers().iter().enumerate() {
        // Functional view first: it defines the quantised truth the RTL
        // must match bit-for-bit.
        let fx_out = eval_fx_layer(layer, &fx_blobs, weights, input, luts, fmt)?;
        // Tensor reference.
        let ref_ins: Vec<&Tensor> = if matches!(layer.kind, LayerKind::Input { .. }) {
            vec![input]
        } else {
            layer
                .bottoms
                .iter()
                .map(|b| {
                    ref_blobs
                        .get(b)
                        .ok_or_else(|| DiffError::Reference(format!("blob `{b}` not computed")))
                })
                .collect::<Result<_, _>>()?
        };
        let ref_out = eval_layer(layer, &ref_ins, weights)
            .map_err(|e| DiffError::Reference(e.to_string()))?;
        let fx_ins: Vec<&FxBlob> = layer
            .bottoms
            .iter()
            .filter_map(|b| fx_blobs.get(b))
            .collect();
        // RTL view at sampled positions, bit-exact against functional.
        let rtl_checked = rtl_check_layer(
            &mut bank,
            layer,
            &fx_ins,
            &fx_out,
            weights,
            luts,
            opts,
            opts.inject_rtl_fault == Some(layer_idx),
            &mut report.divergences,
        )?;
        // Bounded tensor↔functional comparison.
        let tol_in = layer
            .bottoms
            .iter()
            .map(|b| tol.get(b).copied().unwrap_or(0.0))
            .fold(0.0, f64::max);
        let upstream_poison = layer.bottoms.iter().any(|b| poisoned.get(b) == Some(&true));
        let rule = derive_ref_rule(
            layer, &ref_ins, &ref_out, &fx_ins, weights, luts, fmt, tol_in, opts,
        );
        let fx_tensor = fx_out.to_tensor();
        let mut audit = LayerAudit {
            layer: layer.name.clone(),
            kind: kind_tag(&layer.kind).to_string(),
            rtl_checked,
            ref_checked: 0,
            ref_skipped: 0,
            tolerance: 0.0,
            max_ref_error: 0.0,
            skip_reason: None,
            range_proven: chain_proven.contains(layer.name.as_str()),
        };
        let mut poison_out = upstream_poison;
        if ref_out.shape() != fx_tensor.shape() {
            report.divergences.push(Divergence {
                layer: layer.name.clone(),
                kind: audit.kind.clone(),
                views: (View::Tensor, View::Functional),
                index: 0,
                lhs: ref_out.shape().elements() as f64,
                rhs: fx_tensor.shape().elements() as f64,
                tolerance: 0.0,
                detail: format!("shape {} vs {}", ref_out.shape(), fx_tensor.shape()),
            });
        } else {
            match rule {
                RefRule::Skip(reason) => {
                    audit.ref_skipped = ref_out.shape().elements();
                    audit.skip_reason = Some(reason);
                    poison_out = true;
                }
                _ if upstream_poison => {
                    audit.ref_skipped = ref_out.shape().elements();
                    audit.skip_reason = Some("upstream blob is index-valued");
                }
                RefRule::Scalar(bound) => {
                    audit.tolerance = bound;
                    compare_bounded(
                        layer,
                        &ref_out,
                        &fx_out,
                        fmt,
                        |_| bound,
                        &mut audit,
                        &mut report.divergences,
                    );
                }
                RefRule::PerElement(bounds) => {
                    audit.tolerance = bounds
                        .iter()
                        .copied()
                        .filter(|b| b.is_finite())
                        .fold(0.0, f64::max);
                    compare_bounded(
                        layer,
                        &ref_out,
                        &fx_out,
                        fmt,
                        |i| bounds[i],
                        &mut audit,
                        &mut report.divergences,
                    );
                }
            }
        }
        // The comparison bound becomes the downstream input tolerance.
        let tol_out = match &layer.kind {
            // Index/table outputs restart the error budget (they are
            // exact quantised values when comparable at all).
            LayerKind::Associative { .. } | LayerKind::Classifier { .. } => fmt.resolution() / 2.0,
            _ => audit.tolerance.max(tol_in),
        };
        report.layers.push(audit);
        for top in &layer.tops {
            ref_blobs.insert(top.clone(), ref_out.clone());
            fx_blobs.insert(top.clone(), fx_out.clone());
            tol.insert(top.clone(), tol_out);
            poisoned.insert(top.clone(), poison_out);
        }
    }
    report.rtl_modules = bank.module_stats();
    report.range_proofs = range_proofs;
    if trace::active() {
        trace::counter("rtl", "rtl.checked", report.rtl_checked() as f64);
        for agg in &report.rtl_modules {
            trace::counter("rtl", "rtl.clock_edges", agg.clock_edges as f64);
            trace::counter("rtl", "rtl.settle_passes", agg.settle_passes as f64);
            trace::counter("rtl", "rtl.evals", agg.evals as f64);
            trace::counter("rtl", format!("rtl.evals.{}", agg.module), agg.evals as f64);
        }
    }
    Ok(report)
}

/// Elementwise tensor↔functional check under a per-element bound,
/// skipping saturated values (the fixed-point view clips by design).
/// When the static range analysis chain-proved the layer, the
/// near-the-rail reference guard is dropped — the quantised value
/// provably never clips, so every finite element is audited.
fn compare_bounded(
    layer: &Layer,
    ref_out: &Tensor,
    fx_out: &FxBlob,
    fmt: QFormat,
    bound: impl Fn(usize) -> f64,
    audit: &mut LayerAudit,
    divs: &mut Vec<Divergence>,
) {
    let mut mismatches = 0usize;
    for (i, (r, v)) in ref_out.as_slice().iter().zip(&fx_out.data).enumerate() {
        let b = bound(i);
        let r = f64::from(*r);
        let saturated = v.raw() >= fmt.max_raw()
            || v.raw() <= fmt.min_raw()
            || (!audit.range_proven && r.abs() >= fmt.max_value() - b);
        if !r.is_finite() || !b.is_finite() || saturated {
            audit.ref_skipped += 1;
            continue;
        }
        audit.ref_checked += 1;
        let err = (r - v.to_f64()).abs();
        audit.max_ref_error = audit.max_ref_error.max(err);
        if err > b {
            mismatches += 1;
            if mismatches <= 4 {
                divs.push(Divergence {
                    layer: layer.name.clone(),
                    kind: audit.kind.clone(),
                    views: (View::Tensor, View::Functional),
                    index: i,
                    lhs: r,
                    rhs: v.to_f64(),
                    tolerance: b,
                    detail: "quantisation drift exceeds derived bound".into(),
                });
            }
        }
    }
}

/// Differential run against a generated [`AcceleratorDesign`]: uses the
/// design's compiled LUT images, format and lane count, and stamps the
/// budget tag into the report.
///
/// Beyond the three per-layer views of [`diff_network`], this also runs
/// the fourth view: the design's own `perf_counters` RTL block is replayed
/// from the compiled schedule and cross-checked against the analytic
/// [`crate::CounterSet`] (deterministic counters bit-for-bit, cycle
/// counters within the documented slack — DESIGN.md §10). Counter
/// divergences are appended to the report's divergence list.
///
/// # Errors
///
/// See [`diff_network`]; additionally fails if the design lacks a
/// `perf_counters` module or the counter replay cannot elaborate.
pub fn diff_design(
    design: &AcceleratorDesign,
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    opts: &DiffOptions,
) -> Result<DiffReport, DiffError> {
    let cfg = &design.compiled.config;
    let mut report = diff_network(
        net,
        weights,
        input,
        &design.compiled.luts,
        cfg.format,
        cfg.lanes,
        opts,
    )?;
    report.budget = design.budget.tag().to_string();
    let check = verify_counters(
        &design.design,
        &design.compiled,
        &TimingParams::default(),
        opts.counter_beat_cap,
        opts.engine,
    )?;
    report.divergences.extend(check.divergences.iter().cloned());
    report.counters = Some(check);
    if opts.full_rtl {
        // Fifth view: one continuous coordinator-driven run across every
        // layer, activations flowing through the real memory segments.
        // Whole-run waveforms stay off (a clean run on a large network
        // spans 10^8 cycles); the flight recorder inside the run keeps a
        // bounded ring of the control signals (phase_w, fire_w, AGU
        // valids, DRAM strobes) and freezes the window around the first
        // divergence, so the bundle ships waveforms from this single run.
        let base = crate::fullrun::FullRunOptions {
            engine: opts.engine,
            // A per-layer view already diverged: a bundle will ship, so
            // keep the control-top's final window even if the full run
            // itself stays clean.
            flight_force: !report.divergences.is_empty(),
            profile: opts.profile,
            ..crate::fullrun::FullRunOptions::default()
        };
        let full = crate::fullrun::full_network_run(design, net, weights, input, &base)?;
        report.divergences.extend(full.divergences.iter().cloned());
        report.full_run = Some(full);
    }
    // Attach the full static-analysis report so a divergence bundle
    // ships its lint context (structural/comb/fsm/agu/sched findings
    // plus range proofs) alongside the waveforms.
    report.lint = Some(deepburning_lint::analyze(
        net,
        &design.compiled,
        &design.design,
        Some(weights),
        Some(&design.verilog),
    ));
    Ok(report)
}

/// Re-executes a single layer through the RTL view with VCD waveform
/// recording on every block interpreter, returning `(block tag, vcd
/// text)` pairs for the blocks the layer exercised. This is the
/// divergence-bundle capture path: after [`diff_network`] flags a layer,
/// the harness replays just that layer and dumps the waveforms a hardware
/// engineer would inspect.
///
/// The functional view is walked (without comparisons) up to `layer_name`
/// to reconstruct the layer's quantised inputs.
///
/// # Errors
///
/// Returns [`DiffError`] if the layer does not exist or any view fails to
/// execute.
#[allow(clippy::too_many_arguments)]
pub fn capture_layer_vcd(
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    luts: &LutImages,
    fmt: QFormat,
    design_lanes: u32,
    opts: &DiffOptions,
    layer_name: &str,
) -> Result<Vec<(String, String)>, DiffError> {
    if input.shape() != net.input_shape() {
        return Err(DiffError::Reference("input shape mismatch".into()));
    }
    let _span = trace::span("sim", "sim.capture_vcd");
    let mut bank = RtlBank::new(fmt, design_lanes, opts.engine)?;
    bank.enable_vcd();
    let mut fx_blobs: BTreeMap<String, FxBlob> = BTreeMap::new();
    for (layer_idx, layer) in net.layers().iter().enumerate() {
        let fx_out = eval_fx_layer(layer, &fx_blobs, weights, input, luts, fmt)?;
        if layer.name == layer_name {
            let fx_ins: Vec<&FxBlob> = layer
                .bottoms
                .iter()
                .filter_map(|b| fx_blobs.get(b))
                .collect();
            let mut divs = Vec::new();
            rtl_check_layer(
                &mut bank,
                layer,
                &fx_ins,
                &fx_out,
                weights,
                luts,
                opts,
                opts.inject_rtl_fault == Some(layer_idx),
                &mut divs,
            )?;
            return Ok(bank.collect_vcds());
        }
        for top in &layer.tops {
            fx_blobs.insert(top.clone(), fx_out.clone());
        }
    }
    Err(DiffError::Rtl(format!("layer `{layer_name}` not found")))
}

/// Renders a [`DiffReport`] as a machine-readable JSON document (the
/// layer-audit half of a divergence artifact bundle).
pub fn diff_report_json(report: &DiffReport) -> Json {
    Json::obj([
        ("network", Json::str(report.network.clone())),
        ("budget", Json::str(report.budget.clone())),
        ("clean", Json::Bool(report.is_clean())),
        (
            "skip_audited",
            Json::num(report.skip_audited().len() as f64),
        ),
        (
            "layers",
            Json::Arr(
                report
                    .layers
                    .iter()
                    .map(|l| {
                        Json::obj([
                            ("layer", Json::str(l.layer.clone())),
                            ("kind", Json::str(l.kind.clone())),
                            ("rtl_checked", Json::num(l.rtl_checked as f64)),
                            ("ref_checked", Json::num(l.ref_checked as f64)),
                            ("ref_skipped", Json::num(l.ref_skipped as f64)),
                            ("tolerance", Json::num(l.tolerance)),
                            ("max_ref_error", Json::num(l.max_ref_error)),
                            (
                                "skip_reason",
                                match l.skip_reason {
                                    Some(r) => Json::str(r),
                                    None => Json::Null,
                                },
                            ),
                            ("range_proven", Json::Bool(l.range_proven)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "divergences",
            Json::Arr(
                report
                    .divergences
                    .iter()
                    .map(|d| {
                        Json::obj([
                            ("layer", Json::str(d.layer.clone())),
                            ("kind", Json::str(d.kind.clone())),
                            (
                                "views",
                                Json::Arr(vec![
                                    Json::str(d.views.0.to_string()),
                                    Json::str(d.views.1.to_string()),
                                ]),
                            ),
                            ("index", Json::num(d.index as f64)),
                            ("lhs", Json::num(d.lhs)),
                            ("rhs", Json::num(d.rhs)),
                            ("tolerance", Json::num(d.tolerance)),
                            ("detail", Json::str(d.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rtl_modules",
            Json::Arr(
                report
                    .rtl_modules
                    .iter()
                    .map(|m| {
                        Json::obj([
                            ("module", Json::str(m.module.clone())),
                            ("clock_edges", Json::num(m.clock_edges as f64)),
                            ("settle_passes", Json::num(m.settle_passes as f64)),
                            ("evals", Json::num(m.evals as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            match &report.counters {
                Some(c) => Json::obj([
                    ("clean", Json::Bool(c.is_clean())),
                    ("cycle_slack", Json::num(c.cycle_slack as f64)),
                    ("replayed_cycles", Json::num(c.replayed_cycles as f64)),
                    ("analytic", counter_set_json(&c.analytic)),
                    ("rtl", counter_set_json(&c.rtl)),
                ]),
                None => Json::Null,
            },
        ),
        (
            "range_proofs",
            Json::arr(report.range_proofs.iter().map(RangeProof::to_json)),
        ),
        (
            "lint",
            match &report.lint {
                Some(l) => l.to_json(),
                None => Json::Null,
            },
        ),
        (
            "full_run",
            match &report.full_run {
                Some(f) => Json::obj([
                    ("clean", Json::Bool(f.is_clean())),
                    ("cycles", Json::num(f.cycles as f64)),
                    ("predicted_cycles", Json::num(f.predicted_cycles as f64)),
                    ("cycle_slack", Json::num(f.cycle_slack as f64)),
                    ("output_words", Json::num(f.output_words as f64)),
                    (
                        "refed_layers",
                        Json::Arr(
                            f.refed_layers
                                .iter()
                                .map(|l| Json::str(l.clone()))
                                .collect(),
                        ),
                    ),
                    ("rtl", counter_set_json(&f.rtl_counters)),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

/// JSON image of a [`CounterSet`], keyed by the register-map names of
/// DESIGN.md §10.
pub fn counter_set_json(c: &CounterSet) -> Json {
    Json::obj([
        ("cycles", Json::num(c.cycles as f64)),
        ("active_cycles", Json::num(c.active_cycles as f64)),
        ("stall_cycles", Json::num(c.stall_cycles as f64)),
        ("mac_ops", Json::num(c.mac_ops as f64)),
        ("buffer_reads", Json::num(c.buffer_reads as f64)),
        ("buffer_writes", Json::num(c.buffer_writes as f64)),
        ("agu_bursts", Json::num(c.agu_bursts as f64)),
        ("buffer_peak_words", Json::num(c.buffer_peak_words as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{generate_luts, CompilerConfig};
    use deepburning_model::parse_network;
    use deepburning_tensor::Init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run(src: &str, seed: u64) -> DiffReport {
        let net = parse_network(src).expect("parses");
        let mut rng = StdRng::seed_from_u64(seed);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let shape = net.input_shape();
        let input = Tensor::from_fn(shape, |_, _, _| rng.gen_range(-1.0..1.0f32));
        diff_network(
            &net,
            &ws,
            &input,
            &luts,
            cfg.format,
            cfg.lanes,
            &DiffOptions::default(),
        )
        .expect("diff runs")
    }

    #[test]
    fn mlp_three_views_agree() {
        let report = run(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 6 height: 1 width: 1 } }
            layers { name: "h" type: FC bottom: "data" top: "h"
                     param { num_output: 12 } }
            layers { name: "sig" type: SIGMOID bottom: "h" top: "h" }
            layers { name: "o" type: FC bottom: "h" top: "o"
                     param { num_output: 4 } }
            "#,
            7,
        );
        assert!(report.is_clean(), "{report}");
        assert!(report.rtl_checked() > 0);
    }

    #[test]
    fn conv_pool_relu_three_views_agree() {
        let report = run(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 2 height: 10 width: 10 } }
            layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
                     param { num_output: 6 kernel_size: 3 stride: 1 } }
            layers { name: "relu" type: RELU bottom: "conv" top: "conv" }
            layers { name: "pmax" type: POOLING bottom: "conv" top: "pmax"
                     pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
            layers { name: "pavg" type: POOLING bottom: "pmax" top: "pavg"
                     pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
            layers { name: "fc" type: FC bottom: "pavg" top: "fc"
                     param { num_output: 5 } }
            "#,
            11,
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn classifier_and_tanh_agree() {
        let report = run(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 9 height: 1 width: 1 } }
            layers { name: "fc" type: FC bottom: "data" top: "fc"
                     param { num_output: 9 } }
            layers { name: "th" type: TANH bottom: "fc" top: "fc" }
            layers { name: "cls" type: CLASSIFIER bottom: "fc" top: "cls"
                     classifier_param { top_k: 3 } }
            "#,
            13,
        );
        assert!(report.is_clean(), "{report}");
        // Classifier indices are checked exactly against the RTL even
        // though the tensor comparison skips them.
        let cls = report
            .layers
            .iter()
            .find(|l| l.kind == "classifier")
            .expect("cls");
        assert_eq!(cls.rtl_checked, 3);
        assert_eq!(cls.ref_skipped, 3);
    }

    #[test]
    fn sampling_caps_rtl_work() {
        let net = parse_network(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 1 height: 16 width: 16 } }
            layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
                     param { num_output: 8 kernel_size: 3 stride: 1 } }
            "#,
        )
        .expect("parses");
        let mut rng = StdRng::seed_from_u64(3);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        let opts = DiffOptions {
            max_rtl_samples: 10,
            ..DiffOptions::default()
        };
        let report =
            diff_network(&net, &ws, &input, &luts, cfg.format, cfg.lanes, &opts).expect("runs");
        assert!(report.is_clean(), "{report}");
        let conv = report
            .layers
            .iter()
            .find(|l| l.kind == "conv")
            .expect("conv");
        assert_eq!(conv.rtl_checked, 10);
    }

    #[test]
    fn saturating_dot_products_stay_bit_exact() {
        // Weights far outside Q8.8's comfortable range force clipping in
        // the accumulator readout; the RTL must clip identically and the
        // tensor comparison must skip the saturated elements.
        let net = parse_network(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 8 height: 1 width: 1 } }
            layers { name: "fc" type: FC bottom: "data" top: "fc"
                     param { num_output: 4 } }
            "#,
        )
        .expect("parses");
        let mut ws = WeightSet::new();
        ws.insert(
            "fc",
            deepburning_tensor::LayerWeights {
                w: vec![60.0; 32],
                b: vec![0.5; 4],
            },
        );
        let input = Tensor::vector(&[3.0, 3.0, 3.0, 3.0, -3.0, 2.0, 1.0, 2.5]);
        let report = diff_network(
            &net,
            &ws,
            &input,
            &LutImages::new(),
            QFormat::Q8_8,
            4,
            &DiffOptions::default(),
        )
        .expect("runs");
        assert!(report.is_clean(), "{report}");
        let fc = report.layers.iter().find(|l| l.kind == "fc").expect("fc");
        assert_eq!(
            fc.ref_skipped, 4,
            "saturated outputs skip the bounded check"
        );
        assert!(
            !fc.range_proven,
            "a provably saturating layer must not be chain-proven"
        );
    }

    #[test]
    fn recurrent_layer_is_range_proven_and_fully_audited() {
        // Before the static range pass, the recurrent tolerance
        // compounded exponentially with step count: by step 8 the bound
        // exceeded the format maximum, the near-the-rail guard fired for
        // every element and the layer was skip-audited. The tanh output
        // cap plus the chain proof keep the bound small and audit every
        // element.
        let net = parse_network(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 8 height: 1 width: 1 } }
            layers { name: "settle" type: RECURRENT bottom: "data" top: "settle"
                     recurrent_param { num_output: 8 steps: 8 } }
            "#,
        )
        .expect("parses");
        let mut rng = StdRng::seed_from_u64(5);
        let ws = WeightSet::init(&net, Init::Uniform(0.25), &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        let report = diff_network(
            &net,
            &ws,
            &input,
            &luts,
            cfg.format,
            cfg.lanes,
            &DiffOptions::default(),
        )
        .expect("runs");
        assert!(report.is_clean(), "{report}");
        let settle = report
            .layers
            .iter()
            .find(|l| l.layer == "settle")
            .expect("settle");
        assert!(settle.range_proven, "chain proof expected:\n{report}");
        assert!(
            settle.ref_checked > 0 && settle.ref_skipped == 0,
            "fully audited:\n{report}"
        );
        assert!(
            settle.tolerance < 3.0,
            "per-step cap must stop compounding, got {}",
            settle.tolerance
        );
        assert!(report.skip_audited().is_empty(), "{report}");
        let proof = report
            .range_proofs
            .iter()
            .find(|p| p.layer == "settle")
            .expect("proof row");
        assert!(proof.chain_proven && proof.w1 < 20.0, "{proof:?}");
    }

    #[test]
    fn divergence_reports_name_the_layer() {
        // Sabotage the functional view by handing diff_network a LUT set
        // whose sigmoid image is subtly wrong for the RTL view: easiest
        // robust trigger is a deliberately mismatched weight set between
        // what the views see. Instead, check the report plumbing directly.
        let d = Divergence {
            layer: "conv1".into(),
            kind: "conv".into(),
            views: (View::Functional, View::Rtl),
            index: 3,
            lhs: 1.0,
            rhs: 2.0,
            tolerance: 0.0,
            detail: "raw 0x100 vs 0x200".into(),
        };
        let r = DiffReport {
            network: "t".into(),
            budget: "DB".into(),
            layers: vec![],
            divergences: vec![d],
            rtl_modules: vec![],
            counters: None,
            range_proofs: vec![],
            lint: None,
            full_run: None,
        };
        assert!(!r.is_clean());
        assert_eq!(r.first_divergence().expect("one").layer, "conv1");
        let text = r.to_string();
        assert!(text.contains("DIVERGED"), "{text}");
        assert!(text.contains("conv1"), "{text}");
    }

    const MLP_SRC: &str = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 6 height: 1 width: 1 } }
    layers { name: "h" type: FC bottom: "data" top: "h"
             param { num_output: 12 } }
    layers { name: "sig" type: SIGMOID bottom: "h" top: "h" }
    layers { name: "o" type: FC bottom: "h" top: "o"
             param { num_output: 4 } }
    "#;

    fn mlp_fixture() -> (
        deepburning_model::Network,
        WeightSet,
        LutImages,
        Tensor,
        CompilerConfig,
    ) {
        let net = parse_network(MLP_SRC).expect("parses");
        let mut rng = StdRng::seed_from_u64(19);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        (net, ws, luts, input, cfg)
    }

    #[test]
    fn injected_fault_forces_rtl_divergence() {
        let (net, ws, luts, input, cfg) = mlp_fixture();
        let opts = DiffOptions {
            inject_rtl_fault: Some(1), // the "h" FC layer
            ..DiffOptions::default()
        };
        let report =
            diff_network(&net, &ws, &input, &luts, cfg.format, cfg.lanes, &opts).expect("runs");
        assert!(!report.is_clean());
        let d = report.first_divergence().expect("diverges");
        assert_eq!(d.layer, "h");
        assert_eq!(d.views, (View::Functional, View::Rtl));
        assert_eq!(d.tolerance, 0.0);
    }

    #[test]
    fn report_carries_rtl_module_stats() {
        let (net, ws, luts, input, cfg) = mlp_fixture();
        let report = diff_network(
            &net,
            &ws,
            &input,
            &luts,
            cfg.format,
            cfg.lanes,
            &DiffOptions::default(),
        )
        .expect("runs");
        assert!(!report.rtl_modules.is_empty());
        let neuron = report
            .rtl_modules
            .iter()
            .find(|m| m.module == "neuron")
            .expect("neuron worked");
        assert!(neuron.clock_edges > 0);
        assert!(neuron.evals > 0);
        // Descending by evals.
        for w in report.rtl_modules.windows(2) {
            assert!(w[0].evals >= w[1].evals);
        }
        let text = report.to_string();
        assert!(text.contains("rtl interpreter work"), "{text}");
    }

    #[test]
    fn capture_layer_vcd_dumps_exercised_blocks() {
        let (net, ws, luts, input, cfg) = mlp_fixture();
        let vcds = capture_layer_vcd(
            &net,
            &ws,
            &input,
            &luts,
            cfg.format,
            cfg.lanes,
            &DiffOptions::default(),
            "h",
        )
        .expect("captures");
        assert_eq!(vcds.len(), 1, "only the neuron ran: {vcds:?}");
        let (tag, text) = &vcds[0];
        assert_eq!(tag, "neuron");
        assert!(text.contains("$timescale 1 ns $end"), "{text}");
        assert!(text.contains("$dumpvars"), "{text}");
        assert!(text.contains("$enddefinitions $end"), "{text}");
        // The sigmoid layer additionally exercises the LUT interpolator.
        let vcds = capture_layer_vcd(
            &net,
            &ws,
            &input,
            &luts,
            cfg.format,
            cfg.lanes,
            &DiffOptions::default(),
            "sig",
        )
        .expect("captures");
        assert!(
            vcds.iter().any(|(t, _)| t == "lut:sigmoid"),
            "{:?}",
            vcds.iter().map(|(t, _)| t).collect::<Vec<_>>()
        );
        assert!(capture_layer_vcd(
            &net,
            &ws,
            &input,
            &luts,
            cfg.format,
            cfg.lanes,
            &DiffOptions::default(),
            "nonexistent",
        )
        .is_err());
    }

    #[test]
    fn report_json_round_trips() {
        let (net, ws, luts, input, cfg) = mlp_fixture();
        let opts = DiffOptions {
            inject_rtl_fault: Some(3),
            ..DiffOptions::default()
        };
        let report =
            diff_network(&net, &ws, &input, &luts, cfg.format, cfg.lanes, &opts).expect("runs");
        let doc = diff_report_json(&report);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("valid json");
        assert!(
            matches!(parsed.get("clean"), Some(Json::Bool(false))),
            "{text}"
        );
        let layers = parsed.get("layers").and_then(Json::as_arr).expect("layers");
        assert_eq!(layers.len(), report.layers.len());
        let divs = parsed
            .get("divergences")
            .and_then(Json::as_arr)
            .expect("divs");
        assert!(!divs.is_empty());
        assert_eq!(
            divs[0].get("layer").and_then(Json::as_str),
            Some("o"),
            "{text}"
        );
        let modules = parsed
            .get("rtl_modules")
            .and_then(Json::as_arr)
            .expect("modules");
        assert!(!modules.is_empty());
    }

    #[test]
    fn diff_emits_rtl_counters_when_traced() {
        let (net, ws, luts, input, cfg) = mlp_fixture();
        let tracer = deepburning_trace::Tracer::new();
        {
            let _session = deepburning_trace::install(&tracer);
            diff_network(
                &net,
                &ws,
                &input,
                &luts,
                cfg.format,
                cfg.lanes,
                &DiffOptions::default(),
            )
            .expect("runs");
        }
        let metrics = tracer.metrics();
        let counters = metrics.get("counters").expect("counters");
        assert!(
            counters
                .get("rtl.evals")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
                > 0.0
        );
        assert!(
            counters
                .get("fx.layers")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
                == 0.0,
            "diff walks eval_fx_layer directly, not functional_forward_all"
        );
        deepburning_trace::validate_chrome_trace(&tracer.chrome_trace()).expect("valid trace");
    }

    #[test]
    fn diff_design_full_rtl_populates_fifth_view() {
        use deepburning_core::{generate, Budget};
        let net = parse_network(MLP_SRC).expect("parses");
        let mut rng = StdRng::seed_from_u64(23);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        let design = generate(&net, &Budget::Small).expect("generates");
        let opts = DiffOptions {
            full_rtl: true,
            ..DiffOptions::default()
        };
        let report = diff_design(&design, &net, &ws, &input, &opts).expect("runs");
        assert!(report.is_clean(), "{report}");
        let full = report.full_run.as_ref().expect("fifth view ran");
        assert!(full.is_clean());
        assert!(full.cycles > 0);
        assert!(full.rtl_counters.cycles == full.cycles);
        assert!(
            full.vcd.is_none(),
            "clean runs skip waveform capture (it is re-run lazily for bundles)"
        );
        // The full-run outcome rides along in the bundle JSON.
        let doc = diff_report_json(&report);
        let parsed = Json::parse(&doc.render()).expect("valid json");
        let fr = parsed.get("full_run").expect("full_run key");
        assert!(matches!(fr.get("clean"), Some(Json::Bool(true))));
        assert!(fr.get("cycles").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        // Without the flag the fifth view stays off.
        let report =
            diff_design(&design, &net, &ws, &input, &DiffOptions::default()).expect("runs");
        assert!(report.full_run.is_none());
    }
}
