//! Transaction-level cycle-accurate timing simulation.
//!
//! This replaces the paper's Vivado RTL simulation of forward propagation:
//! each coordinator phase is simulated as overlapping compute / DRAM /
//! buffer streams (double buffering), and the phase latency is the slowest
//! stream plus the pipeline fill/drain and reconfiguration overhead.

use deepburning_compiler::{CompiledNetwork, Phase, PhaseKind};
use deepburning_core::AcceleratorDesign;

/// Tunable micro-architecture timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Effective DRAM bandwidth in bytes per accelerator cycle.
    /// (Zynq DDR3-1066, 32-bit @ 533 MHz ≈ 4.2 GB/s ≈ 42 B/cycle at the
    /// accelerator's 100 MHz.)
    pub dram_bytes_per_cycle: f64,
    /// Bytes per DRAM burst.
    pub burst_bytes: u64,
    /// Extra cycles charged per burst (row activation, AXI handshake).
    pub burst_overhead_cycles: u64,
    /// Aux-unit operations retired per cycle (pooling/LRN stream width).
    pub aux_ops_per_cycle: u64,
    /// Approx-LUT evaluations per cycle (parallel table banks).
    pub lut_ops_per_cycle: u64,
    /// Fixed cycles per phase: datapath fill/drain plus the coordinator's
    /// producer-consumer reconnection.
    pub phase_overhead_cycles: u64,
    /// Whether fetch of fold *i+1* overlaps compute of fold *i*.
    pub double_buffering: bool,
    /// Hand-tuned designs map their dataflow so every lane stays busy;
    /// generated designs waste the remainder lanes when a layer's
    /// parallelism does not match the lane count (the paper's hardware/
    /// parameter "mis-match").
    pub assume_full_lane_utilization: bool,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            dram_bytes_per_cycle: 42.0,
            burst_bytes: 256,
            burst_overhead_cycles: 1,
            aux_ops_per_cycle: 8,
            lut_ops_per_cycle: 4,
            phase_overhead_cycles: 32,
            double_buffering: true,
            assume_full_lane_utilization: false,
        }
    }
}

/// Cycle breakdown of one simulated phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTiming {
    /// Phase id.
    pub phase: usize,
    /// Cycles the datapath (lanes / aux / LUT / sorter) needs.
    pub compute_cycles: u64,
    /// Cycles the DRAM traffic needs.
    pub dram_cycles: u64,
    /// Cycles the on-chip buffer traffic needs.
    pub buffer_cycles: u64,
    /// The phase's contribution to total latency.
    pub latency_cycles: u64,
}

/// The analytic performance-counter set — one field per register of the
/// generated `perf_counters` RTL block, in register-map order (DESIGN.md
/// §10). [`simulate_timing`]/[`simulate_folding`] derive it from the
/// folding plan; the differential harness replays the same schedule into
/// the RTL block and checks the deterministic fields bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    /// Total cycles the accelerator is busy (free-running counter).
    pub cycles: u64,
    /// Cycles the neuron array / aux datapath is actively retiring work.
    pub active_cycles: u64,
    /// Cycles stalled on DRAM transfers beyond compute/buffer overlap.
    pub stall_cycles: u64,
    /// MAC operations retired (deterministic).
    pub mac_ops: u64,
    /// Words read from the on-chip buffers (deterministic).
    pub buffer_reads: u64,
    /// Words written into the on-chip buffers (deterministic).
    pub buffer_writes: u64,
    /// DRAM bursts issued by the main AGU (deterministic).
    pub agu_bursts: u64,
    /// Peak single-phase buffer fill in words (deterministic).
    pub buffer_peak_words: u64,
}

/// The outcome of a timing simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingReport {
    /// Per-phase breakdown in schedule order.
    pub phases: Vec<PhaseTiming>,
    /// End-to-end latency in cycles.
    pub total_cycles: u64,
    /// The analytic performance-counter set for the whole run.
    pub counters: CounterSet,
}

impl TimingReport {
    /// Latency in seconds at `clock_hz`.
    pub fn seconds(&self, clock_hz: u64) -> f64 {
        self.total_cycles as f64 / clock_hz as f64
    }

    /// Total cycles spent waiting on DRAM beyond compute (memory-bound
    /// slack) — used by the ablation analyses.
    pub fn memory_bound_cycles(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| {
                p.dram_cycles
                    .saturating_sub(p.compute_cycles.max(p.buffer_cycles))
            })
            .fold(0u64, u64::saturating_add)
    }
}

fn dram_cycles(bytes: u64, p: &TimingParams) -> u64 {
    if bytes == 0 {
        return 0;
    }
    // Saturate rather than wrap: a zero-bandwidth link never finishes.
    let stream = if p.dram_bytes_per_cycle > 0.0 {
        let c = (bytes as f64 / p.dram_bytes_per_cycle).ceil();
        if c >= u64::MAX as f64 {
            u64::MAX
        } else {
            c as u64
        }
    } else {
        u64::MAX
    };
    let bursts = dram_bursts(bytes, p);
    stream.saturating_add(bursts.saturating_mul(p.burst_overhead_cycles))
}

fn dram_bursts(bytes: u64, p: &TimingParams) -> u64 {
    bytes.div_ceil(p.burst_bytes.max(1))
}

fn compute_cycles(phase: &Phase, lanes: u32, p: &TimingParams) -> u64 {
    match phase.kind {
        PhaseKind::Compute => {
            let effective = if p.assume_full_lane_utilization {
                lanes
            } else {
                phase.active_lanes.min(lanes)
            };
            phase.work.macs.div_ceil(u64::from(effective.max(1)))
        }
        PhaseKind::Aux => phase.work.aux_ops.div_ceil(p.aux_ops_per_cycle.max(1)),
        PhaseKind::Lut => phase.work.lut_ops.div_ceil(p.lut_ops_per_cycle.max(1)),
        PhaseKind::Sort => phase.work.aux_ops.max(1),
    }
}

/// Simulates the schedule of a compiled network.
pub fn simulate_timing(compiled: &CompiledNetwork, params: &TimingParams) -> TimingReport {
    simulate_folding(&compiled.folding, compiled.config.lanes, params)
}

/// Simulates an arbitrary folding plan (used for training-iteration plans
/// produced by [`deepburning_compiler::plan_training`]).
pub fn simulate_folding(
    folding: &deepburning_compiler::FoldingPlan,
    lanes: u32,
    params: &TimingParams,
) -> TimingReport {
    use deepburning_trace as trace;
    use deepburning_trace::json::Json;
    let _span = trace::span("sim", "sim.timing");
    let mut phases = Vec::with_capacity(folding.phases.len());
    let mut total = 0u64;
    let mut counters = CounterSet::default();
    for phase in &folding.phases {
        let compute = compute_cycles(phase, lanes, params);
        let dram_bytes = phase.work.dram_read_bytes + phase.work.dram_write_bytes;
        let dram = dram_cycles(dram_bytes, params);
        // The buffer bus moves `lanes` words per cycle into the datapath.
        let buffer = (phase.work.buffer_read_words + phase.work.buffer_write_words)
            .div_ceil(u64::from(lanes.max(1)));
        let latency = if params.double_buffering {
            compute
                .max(dram)
                .max(buffer)
                .saturating_add(params.phase_overhead_cycles)
        } else {
            compute
                .saturating_add(dram)
                .saturating_add(buffer)
                .saturating_add(params.phase_overhead_cycles)
        };
        counters.active_cycles = counters.active_cycles.saturating_add(compute);
        counters.stall_cycles = counters
            .stall_cycles
            .saturating_add(dram.saturating_sub(compute.max(buffer)));
        counters.mac_ops += phase.work.macs;
        counters.buffer_reads += phase.work.buffer_read_words;
        counters.buffer_writes += phase.work.buffer_write_words;
        counters.agu_bursts += if dram_bytes == 0 {
            0
        } else {
            dram_bursts(dram_bytes, params)
        };
        counters.buffer_peak_words = counters
            .buffer_peak_words
            .max(phase.work.buffer_write_words);
        if trace::active() {
            // One virtual microsecond per simulated cycle; each phase is a
            // complete event on the "timing" track with its cycle
            // attribution attached.
            trace::virtual_event(
                "sim",
                "timing",
                format!("{}#{}", phase.layer, phase.id),
                total as f64,
                latency as f64,
                vec![
                    ("compute_cycles".to_string(), Json::num(compute as f64)),
                    ("dram_cycles".to_string(), Json::num(dram as f64)),
                    ("buffer_cycles".to_string(), Json::num(buffer as f64)),
                ],
            );
        }
        total = total.saturating_add(latency);
        phases.push(PhaseTiming {
            phase: phase.id,
            compute_cycles: compute,
            dram_cycles: dram,
            buffer_cycles: buffer,
            latency_cycles: latency,
        });
    }
    if trace::active() {
        trace::counter("sim", "sim.timing.phases", phases.len() as f64);
        trace::counter("sim", "sim.timing.total_cycles", total as f64);
        trace::counter(
            "sim",
            "sim.timing.compute_cycles",
            phases.iter().map(|p| p.compute_cycles).sum::<u64>() as f64,
        );
        trace::counter(
            "sim",
            "sim.timing.dram_cycles",
            phases.iter().map(|p| p.dram_cycles).sum::<u64>() as f64,
        );
        trace::counter(
            "sim",
            "sim.timing.buffer_cycles",
            phases.iter().map(|p| p.buffer_cycles).sum::<u64>() as f64,
        );
    }
    counters.cycles = total;
    TimingReport {
        phases,
        total_cycles: total,
        counters,
    }
}

/// Aggregates a timing report's phase latencies by layer, descending —
/// the per-layer profile behind the folding ablations.
pub fn aggregate_by_layer(
    folding: &deepburning_compiler::FoldingPlan,
    report: &TimingReport,
) -> Vec<(String, u64)> {
    let mut totals: Vec<(String, u64)> = Vec::new();
    for (phase, timing) in folding.phases.iter().zip(&report.phases) {
        match totals.iter_mut().find(|(name, _)| *name == phase.layer) {
            Some((_, t)) => *t += timing.latency_cycles,
            None => totals.push((phase.layer.clone(), timing.latency_cycles)),
        }
    }
    totals.sort_by_key(|e| std::cmp::Reverse(e.1));
    totals
}

/// Convenience: simulate a generated design and return the forward-pass
/// latency in seconds at the design's clock.
pub fn forward_latency(design: &AcceleratorDesign, params: &TimingParams) -> f64 {
    simulate_timing(&design.compiled, params).seconds(design.clock_hz())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{compile, CompilerConfig};
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 28 width: 28 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 64 kernel_size: 5 stride: 1 } }
    layers { name: "pool" type: POOLING bottom: "conv" top: "pool"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
    layers { name: "fc" type: FC bottom: "pool" top: "fc"
             param { num_output: 10 } }
    "#;

    fn compiled(lanes: u32) -> CompiledNetwork {
        let net = parse_network(SRC).expect("parses");
        compile(
            &net,
            &CompilerConfig {
                lanes,
                ..CompilerConfig::default()
            },
        )
        .expect("compiles")
    }

    #[test]
    fn more_lanes_fewer_cycles() {
        let p = TimingParams::default();
        let small = simulate_timing(&compiled(16), &p).total_cycles;
        let large = simulate_timing(&compiled(128), &p).total_cycles;
        assert!(
            large < small,
            "128 lanes ({large}) should beat 16 lanes ({small})"
        );
    }

    #[test]
    fn lane_scaling_sublinear_due_to_memory() {
        let p = TimingParams::default();
        let t16 = simulate_timing(&compiled(16), &p).total_cycles as f64;
        let t256 = simulate_timing(&compiled(256), &p).total_cycles as f64;
        let speedup = t16 / t256;
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(speedup < 16.0, "memory should cap scaling, got {speedup}");
    }

    #[test]
    fn double_buffering_helps() {
        let c = compiled(64);
        let with = simulate_timing(&c, &TimingParams::default()).total_cycles;
        let without = simulate_timing(
            &c,
            &TimingParams {
                double_buffering: false,
                ..TimingParams::default()
            },
        )
        .total_cycles;
        assert!(with < without);
    }

    #[test]
    fn phase_count_matches_plan() {
        let c = compiled(16);
        let report = simulate_timing(&c, &TimingParams::default());
        assert_eq!(report.phases.len(), c.folding.phases.len());
        let sum: u64 = report.phases.iter().map(|p| p.latency_cycles).sum();
        assert_eq!(sum, report.total_cycles);
    }

    #[test]
    fn aggregation_sums_to_total() {
        let c = compiled(32);
        let report = simulate_timing(&c, &TimingParams::default());
        let layers = aggregate_by_layer(&c.folding, &report);
        let sum: u64 = layers.iter().map(|(_, t)| t).sum();
        assert_eq!(sum, report.total_cycles);
        // Descending order.
        for w in layers.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn seconds_at_100mhz() {
        let report = TimingReport {
            phases: vec![],
            total_cycles: 1_000_000,
            counters: CounterSet::default(),
        };
        assert!((report.seconds(100_000_000) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn counter_set_is_consistent_with_plan() {
        let c = compiled(32);
        let report = simulate_timing(&c, &TimingParams::default());
        let k = &report.counters;
        assert_eq!(k.cycles, report.total_cycles);
        assert_eq!(k.mac_ops, c.folding.total_work().macs);
        assert_eq!(k.stall_cycles, report.memory_bound_cycles());
        assert_eq!(
            k.active_cycles,
            report.phases.iter().map(|p| p.compute_cycles).sum::<u64>()
        );
        let reads: u64 = c
            .folding
            .phases
            .iter()
            .map(|p| p.work.buffer_read_words)
            .sum();
        let writes: u64 = c
            .folding
            .phases
            .iter()
            .map(|p| p.work.buffer_write_words)
            .sum();
        assert_eq!(k.buffer_reads, reads);
        assert_eq!(k.buffer_writes, writes);
        assert!(k.agu_bursts > 0, "DRAM traffic must issue bursts");
        assert!(k.buffer_peak_words > 0);
        assert!(k.active_cycles <= k.cycles);
    }

    #[test]
    fn memory_bound_cycles_empty_report_is_zero() {
        assert_eq!(TimingReport::default().memory_bound_cycles(), 0);
        assert_eq!(TimingReport::default().counters, CounterSet::default());
    }

    #[test]
    fn zero_bandwidth_saturates_instead_of_panicking() {
        let c = compiled(16);
        let report = simulate_timing(
            &c,
            &TimingParams {
                dram_bytes_per_cycle: 0.0,
                ..TimingParams::default()
            },
        );
        // Every DRAM-touching phase saturates; the totals must too, and
        // the deterministic counters stay finite and exact.
        assert_eq!(report.total_cycles, u64::MAX);
        assert!(report.memory_bound_cycles() > 0);
        assert_eq!(report.counters.mac_ops, c.folding.total_work().macs);
    }

    #[test]
    fn aggregate_by_layer_empty_plan() {
        let folding = deepburning_compiler::FoldingPlan {
            lanes: 8,
            phases: vec![],
        };
        let report = simulate_folding(&folding, 8, &TimingParams::default());
        assert_eq!(report.total_cycles, 0);
        assert!(aggregate_by_layer(&folding, &report).is_empty());
    }

    #[test]
    fn aggregate_by_layer_single_phase_network() {
        let net = parse_network(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 4 height: 1 width: 1 } }
            layers { name: "fc" type: FC bottom: "data" top: "fc"
                     param { num_output: 3 } }
            "#,
        )
        .expect("parses");
        let c = compile(
            &net,
            &CompilerConfig {
                lanes: 64,
                ..CompilerConfig::default()
            },
        )
        .expect("compiles");
        assert_eq!(c.folding.phases.len(), 1, "expected a single-phase plan");
        let report = simulate_timing(&c, &TimingParams::default());
        let layers = aggregate_by_layer(&c.folding, &report);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].0, "fc");
        assert_eq!(layers[0].1, report.total_cycles);
    }

    #[test]
    fn dram_cycles_include_burst_overhead() {
        let p = TimingParams::default();
        let small = dram_cycles(64, &p);
        let large = dram_cycles(64 * 100, &p);
        assert!(large > small * 50, "{large} vs {small}");
        assert_eq!(dram_cycles(0, &p), 0);
    }

    #[test]
    fn slower_dram_increases_latency() {
        let c = compiled(64);
        let fast = simulate_timing(&c, &TimingParams::default()).total_cycles;
        let slow = simulate_timing(
            &c,
            &TimingParams {
                dram_bytes_per_cycle: 4.2,
                ..TimingParams::default()
            },
        )
        .total_cycles;
        assert!(slow > fast);
    }
}
