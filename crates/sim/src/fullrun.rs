//! Full-network RTL execution — the fifth verification view (DESIGN.md §13).
//!
//! [`full_network_run`] elaborates the control-only top
//! ([`deepburning_core::assemble_control_top`]) and lets the coordinator FSM
//! walk *every* phase of the compiled schedule in one continuous simulation:
//! the context ROMs are loaded through the testbench backdoor, `start` is
//! pulsed once, and the run ends when the coordinator drops `busy`. Every
//! DRAM transaction the AGU fabric emits — address and write strobe, cycle
//! by cycle — is captured and replayed against a software DRAM image laid
//! out by the compiler's [`MemoryMap`](deepburning_compiler::MemoryMap):
//! activations flow through the real `input`/`spill`/`output` segments at
//! the addresses the hardware computes, instead of being re-marshalled from
//! functional blobs per layer.
//!
//! The interpreter caps signals at 64 bits, so the full datapath top cannot
//! elaborate whole; the control top (coordinator + three AGUs + context
//! ROMs + perf counters — all ≤ 64-bit) is the part whose chaining the
//! per-layer views never exercise, and the datapath arithmetic is emulated
//! bit-exactly by the functional view the per-layer RTL diff has already
//! certified against real block RTL.
//!
//! Three comparisons run against the chained per-layer views, all
//! bit-exact:
//!
//! 1. **Stream** — per phase, the captured `(addr, we)` sequence must equal
//!    the compiled program's patterns expanded in hardware launch order
//!    (ascending trigger-bit slot).
//! 2. **Marshal** — the first time a layer fetches a bottom blob, the words
//!    read from the DRAM image are reassembled into a fixed-point blob and
//!    compared raw-for-raw against the functional value; this is where a
//!    wrong segment, stale spill slot or clobbered ping-pong surfaces
//!    *dynamically*.
//! 3. **Output** — after the run, the `output` segment must hold the final
//!    activation raw-for-raw (catches write-backs that never left `spill`).
//!
//! On divergence the run does not abort: the offending layer is recorded in
//! [`FullRunReport::refed_layers`] and downstream layers continue from the
//! functional (per-layer re-fed) values — the automatic bisection that
//! localises which layer's marshalling broke.

use std::collections::{BTreeMap, BTreeSet};

use deepburning_compiler::{plan_spill_slots, AguProgram, BlobPlace, CompiledNetwork, MemoryMap};
use deepburning_components::{
    AguBlock, AguClass, AguPattern, PERF_SEL_ACTIVE, PERF_SEL_BUF_READS, PERF_SEL_BUF_WRITES,
    PERF_SEL_BURSTS, PERF_SEL_CYCLES, PERF_SEL_MACS, PERF_SEL_PEAK, PERF_SEL_STALL,
};
use deepburning_core::{
    assemble_control_top, collect_main_patterns, collect_patterns, context_offsets, context_words,
    AcceleratorDesign,
};
use deepburning_fixed::Fx;
use deepburning_model::Network;
use deepburning_tensor::{Tensor, WeightSet};
use deepburning_trace as trace;
use deepburning_trace::json::Json;
use deepburning_trace::Histogram;
use deepburning_verilog::{FlightRecorder, FlightWindow, SimEngine};

use crate::diff::{kind_tag, DiffError, Divergence, View};
use crate::functional::{eval_fx_layer, quantize_weights, FxBlob};
use crate::timing::CounterSet;

/// Per-phase FSM overhead in cycles: the `fire` cycle in which the context
/// ROMs are presented to the AGUs, plus the cycle in which both `done`
/// registers are sampled by `phase_done`. Pinned against the RTL by
/// `cycles_match_fabric_prediction_exactly`.
pub const PHASE_HANDSHAKE_CYCLES: u64 = 2;

/// Documented slack on the fabric cycle prediction, per phase. The
/// prediction is exact for the current fabric; the slack absorbs future
/// retimings (an extra pipeline register per phase boundary) without
/// letting gross control bugs — a double-advancing coordinator halves the
/// cycle count — slip through.
pub const CYCLE_SLACK_PER_PHASE: u64 = 2;

/// Default flight-recorder depth (see [`FullRunOptions::flight_depth`]).
pub const DEFAULT_FLIGHT_DEPTH: usize = 256;

/// Knobs for a full-network run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullRunOptions {
    /// Engine the control top runs on (both produce identical reports).
    pub engine: SimEngine,
    /// Record a VCD of the whole run (coordinator FSM state, segment
    /// addresses, AGU valids — the top-level context a divergence bundle
    /// ships), buffered in memory and returned in
    /// [`FullRunReport::vcd`]. For long runs prefer
    /// [`FullRunOptions::vcd_stream`].
    pub capture_vcd: bool,
    /// Stream the whole-run VCD incrementally to this file instead of
    /// buffering it: resident memory stays constant however many cycles
    /// the run spans (GoogleNet-scale runs dump to disk). Takes
    /// precedence over `capture_vcd`; the path lands in
    /// [`FullRunReport::vcd_path`].
    pub vcd_stream: Option<std::path::PathBuf>,
    /// Flight-recorder depth in cycles: the run keeps a ring of the last
    /// N cycles of the control signals (FSM phase, AGU valids, DRAM
    /// strobes) and freezes it at the first mismatching DRAM transaction,
    /// so a divergence bundle carries the window *before* the failure
    /// without re-running. `0` disables the recorder.
    pub flight_depth: usize,
    /// Freeze and render the flight window at end-of-run even when the
    /// run itself stayed clean — set by harnesses that already know a
    /// divergence bundle will ship (e.g. a per-layer view diverged) and
    /// want the control-top's final window as context.
    pub flight_force: bool,
    /// Hard cap on simulated cycles; `0` derives `4 * predicted + 1024`
    /// from the fabric model, so a hung coordinator terminates.
    pub cycle_cap: u64,
    /// Profile the simulation engine during the run (counter-based; see
    /// `deepburning_trace::prof`). The compiled engine attributes evals
    /// and executed opcodes per tape level/module and records dirty-set
    /// occupancy; the Tree engine reports its coarse per-module
    /// attribution. The snapshot lands in [`FullRunReport::profile`].
    pub profile: bool,
}

impl Default for FullRunOptions {
    fn default() -> Self {
        FullRunOptions {
            engine: SimEngine::default(),
            capture_vcd: false,
            vcd_stream: None,
            flight_depth: DEFAULT_FLIGHT_DEPTH,
            flight_force: false,
            cycle_cap: 0,
            profile: false,
        }
    }
}

/// One coordinator-FSM phase as observed on the wires: where it started,
/// how long it ran, how many DRAM transactions it issued and how many
/// cycles the main AGU spent stalled waiting on the data sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSlice {
    /// FSM phase index (`phase_w`).
    pub phase: u64,
    /// Layer the compiled schedule maps this phase to.
    pub layer: String,
    /// Cycle (since `start`) the coordinator entered the phase.
    pub start_cycle: u64,
    /// Cycles spent in the phase.
    pub cycles: u64,
    /// DRAM transactions issued during the phase.
    pub xacts: u64,
    /// Cycles the `perf_stall` wire was high (main traffic in flight
    /// while the datapath sweep was idle).
    pub stall_cycles: u64,
}

/// DRAM traffic attributed to one memory-map segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentTraffic {
    /// Segment name (`input`, `spill`, `output`, or a layer's weights).
    pub segment: String,
    /// Read transactions that landed in the segment.
    pub reads: u64,
    /// Write transactions that landed in the segment.
    pub writes: u64,
}

/// The phase timeline of a full-network run: per-phase slices, per-segment
/// traffic totals, and log-scale distributions of phase durations, DRAM
/// burst lengths and stall cycles. Built from per-cycle observations of
/// the control wires, so it is engine-deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunTimeline {
    /// One slice per FSM phase, in execution order.
    pub phases: Vec<PhaseSlice>,
    /// Traffic per memory-map segment, sorted by segment name.
    pub segments: Vec<SegmentTraffic>,
    /// Distribution of per-phase durations (cycles).
    pub phase_cycles: Histogram,
    /// Distribution of DRAM burst lengths (maximal runs of consecutive
    /// `dram_req` cycles).
    pub burst_lengths: Histogram,
    /// Distribution of per-phase stall cycles.
    pub stall_cycles: Histogram,
}

impl RunTimeline {
    /// Busy cycles covered by the timeline.
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// JSON image for reports: phase rows, segment totals and the three
    /// histograms with their bucket layouts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("phase", Json::num(p.phase as f64)),
                                ("layer", Json::str(p.layer.clone())),
                                ("start_cycle", Json::num(p.start_cycle as f64)),
                                ("cycles", Json::num(p.cycles as f64)),
                                ("xacts", Json::num(p.xacts as f64)),
                                ("stall_cycles", Json::num(p.stall_cycles as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "segments",
                Json::Arr(
                    self.segments
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("segment", Json::str(s.segment.clone())),
                                ("reads", Json::num(s.reads as f64)),
                                ("writes", Json::num(s.writes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("phase_cycles", self.phase_cycles.to_json()),
            ("burst_lengths", self.burst_lengths.to_json()),
            ("stall_cycles", self.stall_cycles.to_json()),
        ])
    }
}

/// The outcome of one full-network RTL execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FullRunReport {
    /// Network name.
    pub network: String,
    /// Budget tag of the generated design.
    pub budget: String,
    /// Busy cycles measured by the RTL `perf_counters` block.
    pub cycles: u64,
    /// Fabric-model prediction: `Σ max(main, data stream) + handshake`
    /// per phase.
    pub predicted_cycles: u64,
    /// Slack the cycle check allowed (`CYCLE_SLACK_PER_PHASE` × phases).
    pub cycle_slack: u64,
    /// The full counter register map read back over `perf_sel`/
    /// `perf_rdata` after the run.
    pub rtl_counters: CounterSet,
    /// Every divergence between the full run and the chained per-layer
    /// views.
    pub divergences: Vec<Divergence>,
    /// Layers whose marshalling diverged and were re-fed from functional
    /// values so downstream comparisons stay meaningful (the bisection
    /// trail: the first entry is where the hardware stream broke).
    pub refed_layers: Vec<String>,
    /// Words of the `output` segment checked bit-exactly.
    pub output_words: usize,
    /// VCD text of the control top when requested.
    pub vcd: Option<String>,
    /// Where the streamed VCD went when [`FullRunOptions::vcd_stream`]
    /// was set.
    pub vcd_path: Option<std::path::PathBuf>,
    /// Flight-recorder window around the first mismatching DRAM
    /// transaction; `None` on clean runs or when the recorder is off.
    pub flight_window: Option<FlightWindow>,
    /// The phase timeline observed on the control wires.
    pub timeline: RunTimeline,
    /// Engine hot-spot profile, when [`FullRunOptions::profile`] was
    /// set: per-level/per-opcode attribution over the control top's
    /// instruction tape (compiled engine) or coarse per-module counts
    /// (Tree engine).
    pub profile: Option<deepburning_trace::prof::EngineProfile>,
    /// Parallel-settle occupancy counters, when the run executed on
    /// [`SimEngine::Parallel`] with more than one resolved lane:
    /// batch-kind split, per-region eval attribution and partition-edge
    /// traffic (see `deepburning_trace::par`).
    pub par: Option<deepburning_trace::par::ParProfile>,
}

impl FullRunReport {
    /// True when every comparison held.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Sign-extends a `bits`-wide DRAM word into the raw two's-complement value.
fn sign_extend(word: u64, bits: u32) -> i64 {
    let s = 64 - bits.clamp(1, 64);
    ((word << s) as i64) >> s
}

/// Occurrence-counting twin of the private helpers behind
/// [`collect_main_patterns`]: maps a phase's i-th use of a `(canonical
/// pattern, direction)` key to the i-th copy in the deduplicated hardware
/// set — the trigger-bit slot the RTL launches it from.
fn hw_slot(
    set: &[(AguPattern, bool)],
    occ: &mut Vec<((AguPattern, bool), usize)>,
    p: &AguPattern,
    write: bool,
) -> Option<usize> {
    let key = (AguPattern { offset: 0, ..*p }, write);
    let n = if let Some(e) = occ.iter_mut().find(|e| e.0 == key) {
        e.1 += 1;
        e.1 - 1
    } else {
        occ.push((key, 1));
        0
    };
    set.iter()
        .enumerate()
        .filter(|(_, e)| **e == key)
        .map(|(i, _)| i)
        .nth(n)
}

/// One expected DRAM transaction: address, write strobe, and the index of
/// the program pattern that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Xact {
    addr: u64,
    we: bool,
    pat: usize,
}

/// Expands a phase's main program into the exact transaction sequence the
/// chained AGU emits: patterns sorted by hardware slot (the pending set
/// drains lowest trigger bit first), each expanded to its address stream.
fn expected_xacts(prog: &AguProgram, set: &[(AguPattern, bool)]) -> Vec<Xact> {
    let mut occ: Vec<((AguPattern, bool), usize)> = Vec::new();
    let mut order: Vec<(usize, usize)> = Vec::new();
    for (i, p) in prog.main.iter().enumerate() {
        let write = prog.main_write.get(i).copied().unwrap_or(false);
        if let Some(slot) = hw_slot(set, &mut occ, p, write) {
            order.push((slot, i));
        }
    }
    order.sort_unstable();
    let mut out = Vec::new();
    for (_, i) in order {
        let p = &prog.main[i];
        let we = prog.main_write.get(i).copied().unwrap_or(false);
        out.extend(p.addresses().map(|addr| Xact { addr, we, pat: i }));
    }
    out
}

/// What a main-program pattern moves, recovered from its address range.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PatternRole {
    /// Fetch of the named bottom blob from `place`.
    Fetch(String, BlobPlace),
    /// This fold's weight slice.
    Weights,
    /// Output slice write-back to `place`.
    WriteBack(BlobPlace),
}

/// Word offset of a `place`'s segment base in the DRAM image.
fn seg_base(map: &MemoryMap, place: BlobPlace) -> u64 {
    let name = match place {
        BlobPlace::Input => "input",
        BlobPlace::Output => "output",
        BlobPlace::Spill(_) => "spill",
    };
    map.segment(name).map(|s| s.offset).unwrap_or_default()
}

/// Classifies each pattern of a phase's main program, mirroring the order
/// `synthesize_agus` emits them: bottom fetches (in spill-plan source
/// order), the weight slice, then the write-back.
fn classify_patterns(
    prog: &AguProgram,
    layer: &str,
    sources: &[(String, BlobPlace)],
    dest: BlobPlace,
    map: &MemoryMap,
) -> Vec<PatternRole> {
    let weight_off = map.segment(layer).map(|s| s.offset);
    let mut fetch_idx = 0usize;
    prog.main
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if prog.main_write.get(i).copied().unwrap_or(false) {
                PatternRole::WriteBack(dest)
            } else if weight_off == Some(p.start) {
                PatternRole::Weights
            } else {
                let role = sources
                    .get(fetch_idx)
                    .map(|(b, pl)| PatternRole::Fetch(b.clone(), *pl))
                    .unwrap_or(PatternRole::Weights);
                fetch_idx += 1;
                role
            }
        })
        .collect()
}

/// Fabric-model cycle count of one phase: the longer of the main and data
/// address streams, plus the FSM handshake.
fn predicted_phase_cycles(prog: &AguProgram) -> u64 {
    let main: u64 = prog.main.iter().map(AguPattern::footprint).sum();
    let data: u64 = prog.data.iter().map(AguPattern::footprint).sum();
    main.max(data) + PHASE_HANDSHAKE_CYCLES
}

/// Accumulates the [`RunTimeline`] from one per-cycle observation of the
/// control wires. Constant memory: open-slice state plus the bounded
/// phase list and three fixed-size histograms.
#[derive(Default)]
struct TimelineBuilder {
    timeline: RunTimeline,
    /// `(phase, start_cycle, xacts, stall_cycles)` of the open slice.
    open: Option<(u64, u64, u64, u64)>,
    /// `(start_cycle, length)` of the open DRAM burst.
    burst: Option<(u64, u64)>,
}

impl TimelineBuilder {
    fn close_slice(&mut self, cycle: u64) {
        if let Some((phase, start, xacts, stall)) = self.open.take() {
            let cycles = cycle - start;
            self.timeline.phase_cycles.record(cycles);
            self.timeline.stall_cycles.record(stall);
            self.timeline.phases.push(PhaseSlice {
                phase,
                layer: String::new(), // resolved in finish()
                start_cycle: start,
                cycles,
                xacts,
                stall_cycles: stall,
            });
        }
    }

    fn close_burst(&mut self, emit_trace: bool) {
        if let Some((start, len)) = self.burst.take() {
            self.timeline.burst_lengths.record(len);
            if emit_trace {
                trace::virtual_event(
                    "sim",
                    "fullrtl.dram",
                    format!("burst x{len}"),
                    start as f64,
                    len as f64,
                    vec![],
                );
            }
        }
    }

    /// One observed cycle: the FSM phase, whether a DRAM transaction
    /// issued, and whether the stall wire was high.
    fn tick(&mut self, cycle: u64, phase: u64, req: bool, stall: bool, emit_trace: bool) {
        match &mut self.open {
            Some((p, ..)) if *p == phase => {}
            _ => {
                self.close_slice(cycle);
                self.open = Some((phase, cycle, 0, 0));
            }
        }
        if let Some((_, _, xacts, stalls)) = &mut self.open {
            if req {
                *xacts += 1;
            }
            if stall {
                *stalls += 1;
            }
        }
        match (&mut self.burst, req) {
            (Some((_, len)), true) => *len += 1,
            (Some(_), false) => self.close_burst(emit_trace),
            (None, true) => self.burst = Some((cycle, 1)),
            (None, false) => {}
        }
    }

    /// Closes open state, resolves layer names, attributes the captured
    /// transactions to memory-map segments, and emits the Perfetto view.
    fn finish(
        mut self,
        end_cycle: u64,
        compiled: &CompiledNetwork,
        captured: &[(u64, bool)],
        emit_trace: bool,
    ) -> RunTimeline {
        self.close_slice(end_cycle);
        self.close_burst(emit_trace);
        let phases = &compiled.folding.phases;
        for slice in &mut self.timeline.phases {
            slice.layer = phases
                .get(slice.phase as usize)
                .map(|p| p.layer.clone())
                .unwrap_or_default();
        }
        let mut traffic: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for &(addr, we) in captured {
            let seg = compiled
                .memory_map
                .segments
                .iter()
                .find(|s| addr >= s.offset && addr < s.offset + s.len_words)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "unmapped".into());
            let e = traffic.entry(seg).or_insert((0, 0));
            if we {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        self.timeline.segments = traffic
            .into_iter()
            .map(|(segment, (reads, writes))| SegmentTraffic {
                segment,
                reads,
                writes,
            })
            .collect();
        if emit_trace {
            for slice in &self.timeline.phases {
                trace::virtual_event(
                    "sim",
                    "fullrtl.fsm",
                    format!("p{} {}", slice.phase, slice.layer),
                    slice.start_cycle as f64,
                    slice.cycles as f64,
                    vec![
                        ("xacts".to_string(), Json::num(slice.xacts as f64)),
                        ("stall".to_string(), Json::num(slice.stall_cycles as f64)),
                    ],
                );
            }
            for seg in &self.timeline.segments {
                trace::counter(
                    "sim",
                    format!("fullrtl.seg.{}.reads", seg.segment),
                    seg.reads as f64,
                );
                trace::counter(
                    "sim",
                    format!("fullrtl.seg.{}.writes", seg.segment),
                    seg.writes as f64,
                );
            }
        }
        self.timeline
    }
}

/// Lazily walks the compiled schedule's expected DRAM transaction stream,
/// one phase materialised at a time — the flight recorder's online
/// trigger cannot afford the whole stream of a GoogleNet-scale run.
struct ExpectedStream<'a> {
    compiled: &'a CompiledNetwork,
    main_set: &'a [(AguPattern, bool)],
    phase: usize,
    buf: Vec<Xact>,
    pos: usize,
}

impl<'a> ExpectedStream<'a> {
    fn new(
        compiled: &'a CompiledNetwork,
        main_set: &'a [(AguPattern, bool)],
    ) -> ExpectedStream<'a> {
        ExpectedStream {
            compiled,
            main_set,
            phase: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn next(&mut self) -> Option<(u64, bool)> {
        while self.pos == self.buf.len() {
            let prog = self.compiled.agu_programs.get(self.phase)?;
            self.buf = expected_xacts(prog, self.main_set);
            self.pos = 0;
            self.phase += 1;
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        Some((x.addr, x.we))
    }
}

/// Builds the DRAM image the host prepares: quantised input activations in
/// `input`, the reordered quantised weight stream plus biases per layer
/// segment, zeros elsewhere.
fn build_dram_image(
    compiled: &CompiledNetwork,
    input: &Tensor,
    weights: &WeightSet,
    mask: u64,
) -> Result<Vec<u64>, DiffError> {
    let fmt = compiled.config.format;
    let map = &compiled.memory_map;
    let mut dram = vec![0u64; map.total_words() as usize];
    let in_seg = map
        .segment("input")
        .ok_or_else(|| DiffError::Rtl("memory map lacks an input segment".into()))?;
    let in_blob = FxBlob::from_tensor(input, fmt);
    for (i, v) in in_blob
        .data
        .iter()
        .take(in_seg.len_words as usize)
        .enumerate()
    {
        dram[in_seg.offset as usize + i] = (v.raw() as u64) & mask;
    }
    for seg in &map.segments {
        if seg.kind != deepburning_compiler::SegmentKind::Weights {
            continue;
        }
        let Some(lw) = weights.get(&seg.name) else {
            continue;
        };
        let qw = quantize_weights(&lw.w, fmt);
        let stream = match compiled.weight_layout.get(&seg.name) {
            Some(order) if order.order.len() == qw.len() => order.apply(&qw),
            _ => qw,
        };
        let qb = quantize_weights(&lw.b, fmt);
        for (i, v) in stream
            .iter()
            .chain(qb.iter())
            .take(seg.len_words as usize)
            .enumerate()
        {
            dram[seg.offset as usize + i] = (v.raw() as u64) & mask;
        }
    }
    Ok(dram)
}

/// Executes the whole network through the generated control fabric in one
/// continuous RTL simulation and cross-checks it bit-exactly against the
/// chained per-layer views (see the module docs for the three
/// comparisons).
///
/// # Errors
///
/// Returns [`DiffError`] if the control top fails to elaborate, the
/// coordinator exceeds the cycle cap, the memory map is missing a segment,
/// or the functional view cannot execute (missing weights/LUTs).
pub fn full_network_run(
    design: &AcceleratorDesign,
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    opts: &FullRunOptions,
) -> Result<FullRunReport, DiffError> {
    let sink: Option<Box<dyn std::io::Write + Send>> = match &opts.vcd_stream {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| DiffError::Rtl(format!("cannot open VCD stream {path:?}: {e}")))?;
            Some(Box::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    full_network_run_to_sink(design, net, weights, input, opts, sink)
}

/// [`full_network_run`] with the streaming-VCD sink supplied directly
/// instead of opened from [`FullRunOptions::vcd_stream`]. The waveform is
/// written incrementally into `vcd_sink` as the simulation advances —
/// never accumulated — so a byte-counting sink observes the run's true
/// peak buffering (the memory-bound CI test injects a capped writer
/// here). [`FullRunReport::vcd_path`] is only set when the sink came from
/// `opts.vcd_stream`.
///
/// # Errors
///
/// See [`full_network_run`].
pub fn full_network_run_to_sink(
    design: &AcceleratorDesign,
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    opts: &FullRunOptions,
    vcd_sink: Option<Box<dyn std::io::Write + Send>>,
) -> Result<FullRunReport, DiffError> {
    let _span = trace::span("sim", "sim.full_rtl");
    let compiled = &design.compiled;
    let cfg = &compiled.config;
    let fmt = cfg.format;
    let wbits = cfg.word_bits.min(64);
    let mask = if wbits >= 64 {
        u64::MAX
    } else {
        (1u64 << wbits) - 1
    };
    let map = &compiled.memory_map;
    let phases = &compiled.folding.phases;
    if phases.is_empty() || compiled.agu_programs.len() != phases.len() {
        return Err(DiffError::Rtl(
            "compiled schedule has no phases to execute".into(),
        ));
    }
    let spill = plan_spill_slots(net, cfg)
        .map_err(|e| DiffError::Rtl(format!("spill planning failed: {e}")))?;
    let mut dram = build_dram_image(compiled, input, weights, mask)?;

    // ---- drive the control top -------------------------------------------
    let ctl = assemble_control_top(net, compiled);
    let mut sim = opts.engine.elaborate(&ctl, &ctl.top)?;
    if opts.profile {
        sim.prof_enable();
    }
    let words = context_words(compiled);
    for (rom, idx) in [
        ("ctx_trig_main", 0),
        ("ctx_trig_data", 1),
        ("ctx_trig_weight", 2),
    ] {
        let image: Vec<u64> = words.iter().map(|w| w[idx]).collect();
        sim.load_memory(rom, &image)?;
    }
    let lanes: Vec<u64> = phases.iter().map(|p| u64::from(p.active_lanes)).collect();
    sim.load_memory("ctx_lanes", &lanes)?;
    let main_set = collect_main_patterns(compiled);
    let pw_main = AguBlock::new(
        AguClass::Main,
        32,
        collect_patterns(compiled, AguClass::Main),
    )
    .pattern_index_width();
    let mut off_image = vec![0u64; phases.len() << pw_main];
    for (p, offs) in context_offsets(compiled).iter().enumerate() {
        for (slot, &off) in offs.iter().enumerate() {
            off_image[(p << pw_main) | slot] = off;
        }
    }
    sim.load_memory("ctx_off_main", &off_image)?;
    let mut vcd_path = None;
    let streaming = vcd_sink.is_some();
    if let Some(sink) = vcd_sink {
        sim.vcd_begin_streaming(&ctl.top, sink);
        vcd_path = opts.vcd_stream.clone();
    } else if opts.capture_vcd {
        sim.vcd_begin(&ctl.top);
    }
    // Flight recorder: watch the coordinator FSM, the AGU valids and the
    // DRAM command wires; trigger on the first transaction that departs
    // from the compiled schedule, so divergence bundles carry the window
    // *before* the failure without a second run.
    let mut flight = (opts.flight_depth > 0).then(|| {
        let watch: Vec<(String, u32)> = [
            "phase_w",
            "busy_w",
            "fire_w",
            "phase_done",
            "done",
            "dram_req",
            "dram_addr",
            "dram_we",
            "agu_main_valid",
            "agu_data_valid",
            "agu_weight_valid",
        ]
        .iter()
        .filter_map(|n| sim.signal_width(n).map(|w| (n.to_string(), w)))
        .collect();
        FlightRecorder::new(&ctl.top, watch, opts.flight_depth)
    });
    let mut expected_stream = ExpectedStream::new(compiled, &main_set);
    sim.poke("rst", 1)?;
    sim.poke("start", 0)?;
    sim.poke("perf_sel", PERF_SEL_CYCLES)?;
    sim.clock()?;
    sim.poke("rst", 0)?;
    sim.poke("start", 1)?;
    sim.clock()?;
    sim.poke("start", 0)?;

    let predicted_cycles: u64 = compiled
        .agu_programs
        .iter()
        .map(predicted_phase_cycles)
        .sum();
    let cap = if opts.cycle_cap > 0 {
        opts.cycle_cap
    } else {
        predicted_cycles * 4 + 1024
    };
    let mut captured: Vec<(u64, bool)> = Vec::new();
    let mut spent = 0u64;
    let emit_trace = trace::active();
    let mut tl = TimelineBuilder::default();
    while sim.read("done")? == 0 {
        let req = sim.read("dram_req")? == 1;
        if req {
            let xact = (sim.read("dram_addr")?, sim.read("dram_we")? == 1);
            captured.push(xact);
            // Online trigger: freeze the flight window at the first
            // transaction the compiled schedule did not predict.
            if let Some(fr) = flight.as_mut() {
                if !fr.triggered() && expected_stream.next() != Some(xact) {
                    fr.trigger();
                }
            }
        }
        tl.tick(
            spent,
            sim.read("phase_w")?,
            req,
            sim.read("perf_stall").unwrap_or(0) == 1,
            emit_trace,
        );
        if let Some(fr) = flight.as_mut() {
            let values: Vec<u64> = fr
                .watched()
                .map(|n| sim.read(n).unwrap_or(0))
                .collect::<Vec<_>>();
            fr.sample(values);
        }
        sim.clock()?;
        spent += 1;
        if spent > cap {
            let at = sim.read("phase_w").unwrap_or(u64::MAX);
            return Err(DiffError::Rtl(format!(
                "coordinator never finished: {spent} cycles (cap {cap}), stuck at phase {at}"
            )));
        }
    }
    let timeline = tl.finish(spent, compiled, &captured, emit_trace);

    // ---- counter readback -------------------------------------------------
    // `en` follows `busy_w`, which has dropped, so these extra edges do not
    // disturb the counts.
    let mut read_reg = |sel: u64| -> Result<u64, DiffError> {
        sim.poke("perf_sel", sel)?;
        sim.clock()?;
        Ok(sim.read("perf_rdata")?)
    };
    let rtl_counters = CounterSet {
        cycles: read_reg(PERF_SEL_CYCLES)?,
        active_cycles: read_reg(PERF_SEL_ACTIVE)?,
        stall_cycles: read_reg(PERF_SEL_STALL)?,
        mac_ops: read_reg(PERF_SEL_MACS)?,
        buffer_reads: read_reg(PERF_SEL_BUF_READS)?,
        buffer_writes: read_reg(PERF_SEL_BUF_WRITES)?,
        agu_bursts: read_reg(PERF_SEL_BURSTS)?,
        buffer_peak_words: read_reg(PERF_SEL_PEAK)?,
    };
    // Buffered captures return the text; streamed captures flush their
    // sink and return `None` (the file at `vcd_path` has the document).
    let vcd = if streaming || opts.capture_vcd {
        sim.vcd_end()
    } else {
        None
    };

    // ---- replay the captured stream against the software DRAM ------------
    let mut divergences: Vec<Divergence> = Vec::new();
    let mut refed: Vec<String> = Vec::new();
    let mut outputs: BTreeMap<String, FxBlob> = BTreeMap::new();
    let mut blobs: BTreeMap<String, FxBlob> = BTreeMap::new();
    let mut marshal_checked: BTreeSet<(String, String)> = BTreeSet::new();
    let mut pos = 0usize;
    let empty_sources: Vec<(String, BlobPlace)> = Vec::new();
    // Layers without phases (Input, dropout at inference) still produce
    // blobs; the cursor evaluates them in network order as the phase walk
    // passes them by.
    let layer_list = net.layers();
    let mut cursor = 0usize;
    let eval_layer = |l: &deepburning_model::Layer,
                      blobs: &mut BTreeMap<String, FxBlob>,
                      outputs: &mut BTreeMap<String, FxBlob>|
     -> Result<(), DiffError> {
        let out = eval_fx_layer(l, blobs, weights, input, &compiled.luts, fmt)?;
        for top in &l.tops {
            blobs.insert(top.clone(), out.clone());
        }
        outputs.insert(l.name.clone(), out);
        Ok(())
    };
    for phase in phases {
        let prog = &compiled.agu_programs[phase.id];
        let layer = net.layer(&phase.layer).ok_or_else(|| {
            DiffError::Rtl(format!("phase references unknown layer {}", phase.layer))
        })?;
        let expected = expected_xacts(prog, &main_set);
        let sources = spill.sources.get(&phase.layer).unwrap_or(&empty_sources);
        let dest = spill
            .dest
            .get(&phase.layer)
            .map(|(_, p)| *p)
            .unwrap_or(BlobPlace::Spill(0));
        let roles = classify_patterns(prog, &phase.layer, sources, dest, map);

        // 1. Stream comparison: the hardware must emit exactly the
        // compiled program, in launch order.
        let got = captured.get(pos..(pos + expected.len()).min(captured.len()));
        let mismatch = match got {
            Some(slice) if slice.len() == expected.len() => expected
                .iter()
                .zip(slice)
                .position(|(e, g)| (e.addr, e.we) != *g),
            _ => Some(got.map(<[(u64, bool)]>::len).unwrap_or(0)),
        };
        if let Some(k) = mismatch {
            let (got_addr, got_we) = captured.get(pos + k).copied().unwrap_or((0, false));
            let want = expected.get(k).copied().unwrap_or(Xact {
                addr: 0,
                we: false,
                pat: 0,
            });
            divergences.push(Divergence {
                layer: phase.layer.clone(),
                kind: kind_tag(&layer.kind).to_string(),
                views: (View::Rtl, View::FullRtl),
                index: k,
                lhs: want.addr as f64,
                rhs: got_addr as f64,
                tolerance: 0.0,
                detail: format!(
                    "phase {} fold {}: DRAM transaction {k} expected addr {:#x} we={} , got addr {:#x} we={}",
                    phase.id, phase.fold, want.addr, want.we as u8, got_addr, got_we as u8
                ),
            });
            if !refed.contains(&phase.layer) {
                refed.push(phase.layer.clone());
            }
        }
        pos = (pos + expected.len()).min(captured.len());

        // 2. Marshal comparison + functional evaluation, first phase of
        // the layer only (later folds refetch the same bottoms).
        let first_phase = !outputs.contains_key(&phase.layer);
        if first_phase {
            // Catch up on phase-less predecessors (Input first of all) so
            // this layer's bottoms exist before the marshal check reads
            // them.
            while cursor < layer_list.len() && layer_list[cursor].name != phase.layer {
                let l = &layer_list[cursor];
                if !outputs.contains_key(&l.name) {
                    eval_layer(l, &mut blobs, &mut outputs)?;
                }
                cursor += 1;
            }
            for (i, role) in roles.iter().enumerate() {
                let PatternRole::Fetch(blob, place) = role else {
                    continue;
                };
                let key = (phase.layer.clone(), blob.clone());
                if marshal_checked.contains(&key) {
                    continue;
                }
                marshal_checked.insert(key);
                let Some(want) = blobs.get(blob) else {
                    continue;
                };
                let base = seg_base(map, *place) + spill.place_offset(*place);
                let p = &prog.main[i];
                for (j, addr) in p.addresses().enumerate() {
                    let got_raw = dram
                        .get(addr as usize)
                        .map(|&w| sign_extend(w, wbits))
                        .unwrap_or(i64::MIN);
                    let Some(wv) = want.data.get(j) else { break };
                    if wv.raw() != got_raw {
                        divergences.push(Divergence {
                            layer: phase.layer.clone(),
                            kind: kind_tag(&layer.kind).to_string(),
                            views: (View::Functional, View::FullRtl),
                            index: j,
                            lhs: wv.to_f64(),
                            rhs: Fx::from_raw(got_raw, fmt).to_f64(),
                            tolerance: 0.0,
                            detail: format!(
                                "bottom `{blob}` marshalled from {place:?} (segment word {}): raw {:#x} vs {:#x}",
                                addr.saturating_sub(base),
                                wv.raw(),
                                got_raw
                            ),
                        });
                        if !refed.contains(&phase.layer) {
                            refed.push(phase.layer.clone());
                        }
                        break;
                    }
                }
            }
            // Evaluate the layer from the (possibly re-fed) functional
            // bottoms *after* the marshal check — in-place layers
            // overwrite their bottom blob.
            eval_layer(layer, &mut blobs, &mut outputs)?;
            if cursor < layer_list.len() && layer_list[cursor].name == phase.layer {
                cursor += 1;
            }
        }

        // 3. Write-back emulation: land this fold's output slice in the
        // DRAM image at the compiled addresses, exactly as the datapath
        // behind the verified stream would.
        if let Some(out) = outputs.get(&phase.layer) {
            let wb_base = seg_base(map, dest) + spill.place_offset(dest);
            for x in expected.iter().filter(|x| x.we) {
                let idx = x.addr.saturating_sub(wb_base) as usize;
                if let (Some(slot), Some(v)) = (dram.get_mut(x.addr as usize), out.data.get(idx)) {
                    *slot = (v.raw() as u64) & mask;
                }
            }
        }
    }

    // Trailing traffic the schedule does not account for is a control bug.
    if pos < captured.len() {
        divergences.push(Divergence {
            layer: "coordinator".into(),
            kind: "control".into(),
            views: (View::Rtl, View::FullRtl),
            index: pos,
            lhs: 0.0,
            rhs: (captured.len() - pos) as f64,
            tolerance: 0.0,
            detail: format!(
                "{} DRAM transactions past the end of the compiled schedule",
                captured.len() - pos
            ),
        });
    }

    // Finish the functional walk past the last phased layer so the output
    // comparison has the final blob even when a phase-less layer closes
    // the network.
    while cursor < layer_list.len() {
        let l = &layer_list[cursor];
        if !outputs.contains_key(&l.name) {
            eval_layer(l, &mut blobs, &mut outputs)?;
        }
        cursor += 1;
    }

    // ---- output-segment comparison ----------------------------------------
    let mut output_words = 0usize;
    if let (Some(out_seg), Some(final_blob)) = (
        map.segment("output"),
        net.output_blobs().last().and_then(|b| blobs.get(b)),
    ) {
        for (i, v) in final_blob
            .data
            .iter()
            .take(out_seg.len_words as usize)
            .enumerate()
        {
            output_words += 1;
            let got_raw = dram
                .get(out_seg.offset as usize + i)
                .map(|&w| sign_extend(w, wbits))
                .unwrap_or(i64::MIN);
            if v.raw() != got_raw && divergences.len() < 64 {
                divergences.push(Divergence {
                    layer: "output".into(),
                    kind: "output".into(),
                    views: (View::Functional, View::FullRtl),
                    index: i,
                    lhs: v.to_f64(),
                    rhs: Fx::from_raw(got_raw, fmt).to_f64(),
                    tolerance: 0.0,
                    detail: format!(
                        "output segment word {i}: raw {:#x} vs {:#x}",
                        v.raw(),
                        got_raw
                    ),
                });
            }
        }
    }

    // ---- cycle cross-check -------------------------------------------------
    let cycle_slack = CYCLE_SLACK_PER_PHASE * phases.len() as u64;
    if rtl_counters.cycles.abs_diff(predicted_cycles) > cycle_slack {
        divergences.push(Divergence {
            layer: "coordinator".into(),
            kind: "control".into(),
            views: (View::Timing, View::FullRtl),
            index: 0,
            lhs: predicted_cycles as f64,
            rhs: rtl_counters.cycles as f64,
            tolerance: cycle_slack as f64,
            detail: format!(
                "full-run busy cycles {} vs fabric prediction {predicted_cycles} (slack {cycle_slack})",
                rtl_counters.cycles
            ),
        });
    }
    if trace::active() {
        trace::counter("sim", "fullrtl.cycles", rtl_counters.cycles as f64);
        trace::counter("sim", "fullrtl.xacts", captured.len() as f64);
    }

    // The stream trigger fires online at the first transaction departing
    // from the schedule. Marshal/output divergences replay against the
    // *scheduled* addresses and only surface here — for those the best
    // bounded evidence is the end-of-run window, so freeze it now.
    if let Some(fr) = flight.as_mut() {
        if (!divergences.is_empty() || opts.flight_force) && !fr.triggered() {
            fr.trigger();
        }
    }
    let flight_window = flight.as_ref().and_then(FlightRecorder::render_vcd);
    let profile = if opts.profile {
        sim.prof_profile()
    } else {
        None
    };
    let par = sim.par_stats().map(par_profile);

    Ok(FullRunReport {
        network: net.name().to_string(),
        budget: design.budget.tag().to_string(),
        cycles: rtl_counters.cycles,
        predicted_cycles,
        cycle_slack,
        rtl_counters,
        divergences,
        refed_layers: refed,
        output_words,
        vcd,
        vcd_path,
        flight_window,
        timeline,
        profile,
        par,
    })
}

/// Folds the engine's parallel-settle counters into the trace crate's
/// [`ParProfile`](deepburning_trace::par::ParProfile) (the trace crate
/// stays dependency-free, so the engine type converts here).
fn par_profile(stats: deepburning_verilog::ParStats) -> deepburning_trace::par::ParProfile {
    deepburning_trace::par::ParProfile {
        threads: stats.threads,
        settles: stats.settles,
        parallel_batches: stats.parallel_batches,
        serial_batches: stats.serial_batches,
        parallel_evals: stats.parallel_evals,
        serial_evals: stats.serial_evals,
        max_batch: stats.max_batch,
        edge_crossings: stats.edge_crossings,
        regions: stats
            .regions
            .iter()
            .map(|r| deepburning_trace::par::ParRegionProf {
                level_lo: r.level_lo,
                level_hi: r.level_hi,
                instrs: r.instrs,
                evals: r.evals,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::CompilerConfig;
    use deepburning_core::{generate_with_config, Budget};
    use deepburning_model::parse_network;
    use deepburning_tensor::Init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SRC: &str = r#"
    name: "fullrun-test"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 10 width: 10 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 4 kernel_size: 3 stride: 1 } }
    layers { name: "relu" type: RELU bottom: "conv" top: "conv" }
    layers { name: "pool" type: POOLING bottom: "conv" top: "pool"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
    layers { name: "fc" type: FC bottom: "pool" top: "fc"
             param { num_output: 6 } }
    "#;

    /// A feature buffer too small to keep the conv output resident, so
    /// mid-network activations genuinely round-trip through the `spill`
    /// segment — the traffic the full run exists to exercise.
    fn fixture() -> (Network, AcceleratorDesign, WeightSet, Tensor) {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig {
            lanes: 8,
            feature_buffer_bytes: 256,
            weight_buffer_bytes: 2048,
            ..CompilerConfig::default()
        };
        let design = generate_with_config(&net, &Budget::Small, &cfg).expect("generates");
        let mut rng = StdRng::seed_from_u64(7);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        (net, design, ws, input)
    }

    #[test]
    fn full_network_run_is_clean_and_exact() {
        let (net, design, ws, input) = fixture();
        let report =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        assert!(report.is_clean(), "divergences: {:?}", report.divergences);
        assert!(report.output_words > 0);
        assert!(report.refed_layers.is_empty());
        assert!(report.rtl_counters.mac_ops > 0);
    }

    /// Pins `PHASE_HANDSHAKE_CYCLES` against the RTL: the fabric model must
    /// predict the measured busy-cycle count exactly, not just within
    /// slack — any FSM retiming has to update the constant *and* the
    /// DESIGN.md §13 contract.
    #[test]
    fn cycles_match_fabric_prediction_exactly() {
        let (net, design, ws, input) = fixture();
        let report =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        assert_eq!(
            report.cycles, report.predicted_cycles,
            "handshake constant drifted from the RTL"
        );
    }

    /// Both engines execute the identical control netlist: reports must be
    /// bit-identical, VCDs included.
    #[test]
    fn engines_agree_on_full_run() {
        let (net, design, ws, input) = fixture();
        let mut opts = FullRunOptions {
            capture_vcd: true,
            ..FullRunOptions::default()
        };
        opts.engine = SimEngine::Tree;
        let tree = full_network_run(&design, &net, &ws, &input, &opts).expect("tree");
        opts.engine = SimEngine::Compiled;
        let compiled = full_network_run(&design, &net, &ws, &input, &opts).expect("compiled");
        assert_eq!(tree.rtl_counters, compiled.rtl_counters);
        assert_eq!(tree.divergences, compiled.divergences);
        assert_eq!(tree.vcd, compiled.vcd);
        assert!(tree.vcd.is_some());
    }

    /// The PR 5 spill-segment AGU bug, re-injected *dynamically*: a
    /// mid-network layer's bottom fetch is pointed back at the `input`
    /// segment (the pre-fix behaviour). The static lint cannot see the
    /// defect here because the ROMs are rebuilt from the patched program —
    /// the full-network run must catch it as a marshalling divergence.
    #[test]
    fn spill_fetch_from_input_segment_is_caught() {
        let (net, mut design, ws, input) = fixture();
        let spill = plan_spill_slots(&net, &design.compiled.config).expect("plan");
        // Find a phase whose layer fetches a spilled (non-Input) bottom.
        let victim = design
            .compiled
            .folding
            .phases
            .iter()
            .find(|ph| {
                !ph.input_resident
                    && spill
                        .sources
                        .get(&ph.layer)
                        .is_some_and(|s| s.iter().any(|(_, p)| matches!(p, BlobPlace::Spill(_))))
            })
            .map(|ph| (ph.id, ph.layer.clone()))
            .expect("a mid-network phase fetches from spill");
        let input_off = design
            .compiled
            .memory_map
            .segment("input")
            .expect("input segment")
            .offset;
        // Every fetch of the victim layer that streams from `spill` is
        // redirected to the input segment at offset 0 — the pre-fix AGU
        // program, byte for byte.
        let spill_seg = design
            .compiled
            .memory_map
            .segment("spill")
            .expect("spill segment")
            .offset;
        let mut patched = 0;
        for prog in &mut design.compiled.agu_programs {
            if design.compiled.folding.phases[prog.phase].layer != victim.1 {
                continue;
            }
            for i in 0..prog.main.len() {
                if !prog.main_write[i] && prog.main[i].start == spill_seg {
                    prog.main[i].start = input_off;
                    prog.main[i].offset = 0;
                    patched += 1;
                }
            }
        }
        assert!(patched > 0, "victim layer has a spill fetch to patch");
        let report =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        assert!(!report.is_clean(), "injected defect must be caught");
        assert!(
            report.refed_layers.contains(&victim.1),
            "bisection must localise the defect to `{}`: {:?}",
            victim.1,
            report.refed_layers
        );
        assert!(report
            .divergences
            .iter()
            .any(|d| d.layer == victim.1 && d.views == (View::Functional, View::FullRtl)));
    }

    /// The observed timeline must tile the run: one slice per FSM phase
    /// in order, slice cycles summing to the busy-cycle counter, DRAM
    /// traffic attributed to real memory-map segments, and the histograms
    /// covering every phase.
    #[test]
    fn timeline_tiles_the_run_exactly() {
        let (net, design, ws, input) = fixture();
        let report =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        let tl = &report.timeline;
        assert_eq!(
            tl.phases.len(),
            design.compiled.folding.phases.len(),
            "one slice per scheduled phase"
        );
        for (i, slice) in tl.phases.iter().enumerate() {
            assert_eq!(slice.phase, i as u64, "phases observed in order");
            assert_eq!(
                slice.layer, design.compiled.folding.phases[i].layer,
                "slice maps back to its layer"
            );
            assert!(slice.cycles > 0);
        }
        // The FSM runs one idle cycle before `busy` rises; the slices
        // must cover the busy window the counter measured.
        assert!(
            tl.total_cycles() >= report.cycles && tl.total_cycles() <= report.cycles + 2,
            "slices ({}) must tile the busy window ({})",
            tl.total_cycles(),
            report.cycles
        );
        assert_eq!(tl.phase_cycles.count(), tl.phases.len() as u64);
        assert_eq!(tl.stall_cycles.count(), tl.phases.len() as u64);
        assert!(tl.burst_lengths.count() > 0, "the run moved DRAM words");
        let names: Vec<&str> = tl.segments.iter().map(|s| s.segment.as_str()).collect();
        assert!(names.contains(&"input"), "{names:?}");
        assert!(names.contains(&"output"), "{names:?}");
        assert!(
            !names.contains(&"unmapped"),
            "every transaction lands in a mapped segment: {names:?}"
        );
        let total_xacts: u64 = tl.segments.iter().map(|s| s.reads + s.writes).sum();
        let per_phase: u64 = tl.phases.iter().map(|p| p.xacts).sum();
        assert_eq!(total_xacts, per_phase, "segment and phase views agree");
        let j = tl.to_json();
        assert!(j.get("phase_cycles").and_then(|h| h.get("p95")).is_some());
    }

    /// Clean runs carry no flight window; a diverging run freezes the
    /// window at the first bad transaction, pre-trigger cycles included.
    #[test]
    fn flight_recorder_freezes_on_stream_divergence() {
        let (net, mut design, ws, input) = fixture();
        let clean =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        assert!(clean.flight_window.is_none(), "clean run must not trigger");
        // Corrupt one mid-stream fetch address (as in the spill test).
        let spill_seg = design
            .compiled
            .memory_map
            .segment("spill")
            .expect("spill segment")
            .offset;
        let mut patched = false;
        'outer: for prog in &mut design.compiled.agu_programs {
            for i in 0..prog.main.len() {
                if !prog.main_write[i] && prog.main[i].start == spill_seg {
                    prog.main[i].offset += 1;
                    patched = true;
                    break 'outer;
                }
            }
        }
        assert!(patched, "fixture must have a spill fetch to corrupt");
        let report =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        assert!(!report.is_clean());
        let w = report
            .flight_window
            .expect("diverging run freezes a window");
        assert!(w.first_cycle <= w.trigger_cycle && w.trigger_cycle <= w.last_cycle);
        assert!(w.vcd.contains("phase_w"), "window shows the FSM: {}", w.vcd);
        assert!(w.vcd.contains("dram_addr"), "{}", w.vcd);
        assert!(
            w.last_cycle - w.first_cycle < DEFAULT_FLIGHT_DEPTH as u64 + 8,
            "window stays bounded"
        );
    }

    /// Streaming writes the same bytes to disk that the buffered capture
    /// returns, and the report records the path instead of the text.
    #[test]
    fn streamed_vcd_file_matches_buffered_capture() {
        let (net, design, ws, input) = fixture();
        let buffered = full_network_run(
            &design,
            &net,
            &ws,
            &input,
            &FullRunOptions {
                capture_vcd: true,
                ..FullRunOptions::default()
            },
        )
        .expect("buffered run");
        let text = buffered.vcd.as_deref().expect("buffered vcd text");
        let path = std::env::temp_dir().join(format!(
            "deepburning-fullrun-stream-{}.vcd",
            std::process::id()
        ));
        let streamed = full_network_run(
            &design,
            &net,
            &ws,
            &input,
            &FullRunOptions {
                vcd_stream: Some(path.clone()),
                ..FullRunOptions::default()
            },
        )
        .expect("streamed run");
        assert!(streamed.vcd.is_none(), "streamed run buffers nothing");
        assert_eq!(streamed.vcd_path.as_deref(), Some(path.as_path()));
        let bytes = std::fs::read(&path).expect("streamed file exists");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            String::from_utf8(bytes).expect("utf8"),
            text,
            "streamed file and buffered text must be byte-identical"
        );
    }

    /// A coordinator that double-advances (the `phase_done` gating bug)
    /// would halve the busy-cycle count and skip half the transfers — the
    /// cycle cross-check and the stream comparison both exist to catch
    /// that class. Simulate the symptom by predicting with a wrong
    /// handshake and confirm the check has teeth.
    #[test]
    fn cycle_check_is_tighter_than_a_double_advance() {
        let (net, design, ws, input) = fixture();
        let report =
            full_network_run(&design, &net, &ws, &input, &FullRunOptions::default()).expect("runs");
        // A double-advancing coordinator skips every other phase and
        // loses roughly half the predicted cycles; the documented slack
        // must stay well inside that.
        assert!(
            report.cycle_slack < report.predicted_cycles / 2,
            "slack {} too loose vs predicted {}",
            report.cycle_slack,
            report.predicted_cycles
        );
    }
}
