//! Acceptance tests for the performance-counter observability layer: on
//! every zoo benchmark the RTL-read counters match the analytic
//! [`deepburning_sim::CounterSet`] — deterministic counters bit-for-bit,
//! cycle counters within the documented slack (DESIGN.md §10) — and the
//! `dbreport` JSON carries the roofline/stall schema.

use deepburning_baselines::{zoo, Benchmark};
use deepburning_bench::{bench_summary_json, build_report, report_json};
use deepburning_core::{generate, Budget};
use deepburning_sim::{verify_counters, SimEngine, TimingParams};
use deepburning_trace::json::Json;

fn benchmarks() -> Vec<Benchmark> {
    let mut list = zoo::all_benchmarks();
    for extra in [
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ] {
        if !list.iter().any(|b| b.name == extra.name) {
            list.push(extra);
        }
    }
    list
}

/// The tentpole acceptance property: for every zoo benchmark at one
/// budget tier, replaying the compiled schedule into the design's own
/// `perf_counters` block reproduces the analytic counter set. The beat
/// cap is deliberately small so the slack path (not just the exact path)
/// is exercised on every network.
#[test]
fn rtl_counters_match_analytic_set_on_every_zoo_benchmark() {
    let params = TimingParams::default();
    for bench in benchmarks() {
        let design = generate(&bench.network, &Budget::Medium)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bench.name));
        let check = verify_counters(
            &design.design,
            &design.compiled,
            &params,
            64,
            SimEngine::Compiled,
        )
        .unwrap_or_else(|e| panic!("{}: counter replay failed: {e}", bench.name));
        assert!(
            check.is_clean(),
            "{}: counter cross-check diverged: {:?}",
            bench.name,
            check.divergences
        );
        // Deterministic counters are bit-for-bit (is_clean already implies
        // this; asserted explicitly so a regression names the counter).
        assert_eq!(check.analytic.mac_ops, check.rtl.mac_ops, "{}", bench.name);
        assert_eq!(
            check.analytic.buffer_reads, check.rtl.buffer_reads,
            "{}",
            bench.name
        );
        assert_eq!(
            check.analytic.buffer_writes, check.rtl.buffer_writes,
            "{}",
            bench.name
        );
        assert_eq!(
            check.analytic.agu_bursts, check.rtl.agu_bursts,
            "{}",
            bench.name
        );
        // Cycle counters obey the documented slack rule.
        assert!(
            check.rtl.cycles <= check.analytic.cycles
                && check.analytic.cycles - check.rtl.cycles <= check.cycle_slack,
            "{}: cycles {} vs {} outside slack {}",
            bench.name,
            check.rtl.cycles,
            check.analytic.cycles,
            check.cycle_slack
        );
    }
}

/// With no beat cap the replay is cycle-accurate: zero slack, all eight
/// registers equal.
#[test]
fn uncapped_replay_is_exact_on_ann0() {
    let bench = zoo::ann0();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let check = verify_counters(
        &design.design,
        &design.compiled,
        &TimingParams::default(),
        u64::MAX,
        SimEngine::Compiled,
    )
    .expect("replays");
    assert_eq!(check.cycle_slack, 0);
    assert_eq!(check.analytic, check.rtl);
}

/// `report.json` schema: register-map counters, per-layer rows, stall
/// split, roofline placement and the counter cross-check verdict.
#[test]
fn dbreport_json_carries_roofline_and_stall_schema() {
    let bench = zoo::mnist();
    let params = TimingParams::default();
    let design = generate(&bench.network, &Budget::Medium).expect("generates");
    let mut report = build_report(bench.name, &design, &params);
    let check = verify_counters(
        &design.design,
        &design.compiled,
        &params,
        64,
        SimEngine::Compiled,
    )
    .expect("replays");
    report.counter_check = Some((check.is_clean(), check.cycle_slack));

    let doc = Json::parse(&report_json(&report).render()).expect("valid json");
    for key in ["benchmark", "budget", "lanes", "word_bits", "clock_hz"] {
        assert!(doc.get(key).is_some(), "missing `{key}`");
    }
    let counters = doc.get("counters").expect("counters");
    for key in [
        "cycles",
        "active_cycles",
        "stall_cycles",
        "mac_ops",
        "buffer_reads",
        "buffer_writes",
        "agu_bursts",
        "buffer_peak_words",
    ] {
        assert!(
            counters.get(key).and_then(Json::as_f64).is_some(),
            "counters missing `{key}`"
        );
    }
    let layers = doc.get("layers").and_then(Json::as_arr).expect("layers");
    assert!(!layers.is_empty());
    for l in layers {
        for key in ["layer", "cycles", "mac_ops", "utilization", "stall_cycles"] {
            assert!(l.get(key).is_some(), "layer row missing `{key}`");
        }
    }
    let stalls = doc.get("stalls").expect("stalls");
    let total = stalls
        .get("total_cycles")
        .and_then(Json::as_f64)
        .expect("total");
    let parts: f64 = ["active_cycles", "memory_bound_cycles", "overhead_cycles"]
        .iter()
        .map(|k| stalls.get(k).and_then(Json::as_f64).expect("stall part"))
        .sum();
    assert_eq!(total, parts, "stall split must account for every cycle");
    let roof = doc.get("roofline").expect("roofline");
    for key in [
        "intensity_ops_per_byte",
        "attained_ops_per_cycle",
        "lane_peak_ops_per_cycle",
        "dsp_peak_ops_per_cycle",
        "bandwidth_ops_per_cycle",
    ] {
        assert!(
            roof.get(key).and_then(Json::as_f64).is_some(),
            "roofline missing `{key}`"
        );
    }
    assert!(matches!(
        roof.get("bound").and_then(Json::as_str),
        Some("compute") | Some("memory")
    ));
    assert_eq!(
        doc.get("counter_check")
            .and_then(|c| c.get("clean"))
            .and_then(|v| match v {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
        Some(true),
        "counter cross-check must be clean"
    );

    // The committed-baseline summary derives from the same report.
    let summary = Json::parse(&bench_summary_json(&report).render()).expect("valid json");
    for key in ["benchmark", "budget", "cycles", "utilization", "stalls"] {
        assert!(summary.get(key).is_some(), "baseline missing `{key}`");
    }
}

/// The committed `BENCH_*.json` baselines at the repo root stay
/// regenerable: the current tree reproduces their cycle counts exactly
/// (the model is deterministic; a drift here must be deliberate and the
/// baseline re-committed).
#[test]
fn committed_bench_baselines_match_current_model() {
    for (file, bench) in [
        ("BENCH_ann0.json", zoo::ann0()),
        ("BENCH_cmac.json", zoo::cmac()),
        ("BENCH_mnist.json", zoo::mnist()),
    ] {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/").to_string() + file;
        let committed = match std::fs::read_to_string(&path) {
            Ok(t) => Json::parse(&t).unwrap_or_else(|e| panic!("{file}: invalid json: {e}")),
            // Fresh checkouts without baselines are fine; CI's dbreport
            // step regenerates them.
            Err(_) => continue,
        };
        let design = generate(&bench.network, &Budget::Medium).expect("generates");
        let report = build_report(bench.name, &design, &TimingParams::default());
        let fresh = Json::parse(&bench_summary_json(&report).render()).expect("valid json");
        assert_eq!(
            committed.get("cycles").and_then(Json::as_f64),
            fresh.get("cycles").and_then(Json::as_f64),
            "{file}: committed baseline cycles drifted — regenerate with \
             `dbreport <bench> --bench-json` if intended"
        );
        assert_eq!(
            committed.get("mac_ops").and_then(Json::as_f64),
            fresh.get("mac_ops").and_then(Json::as_f64),
            "{file}: committed baseline mac_ops drifted"
        );
    }
}
