//! Executes a whole generated accelerator top in the behavioural Verilog
//! interpreter: context ROMs loaded with the compiler's schedule, start
//! pulsed, DRAM traffic observed, completion reached. This is the closest
//! stand-in for the paper's Vivado forward-propagation simulation.

use deepburning::core::{context_words, generate, Budget};
use deepburning::model::parse_network;
use deepburning::verilog::Interpreter;

/// A network small enough that the datapath bus fits the interpreter's
/// 64-bit signal limit (lanes are capped by the widest layer: 2).
const SRC: &str = r#"
name: "tiny"
layers { name: "data" type: INPUT top: "data"
         input_param { channels: 4 height: 1 width: 1 } }
layers { name: "fc1" type: FC bottom: "data" top: "fc1"
         param { num_output: 2 } }
layers { name: "relu" type: RELU bottom: "fc1" top: "fc1" }
layers { name: "fc2" type: FC bottom: "fc1" top: "fc2"
         param { num_output: 2 } }
"#;

#[test]
fn generated_top_runs_to_completion() {
    let net = parse_network(SRC).expect("parses");
    let design = generate(&net, &Budget::Medium).expect("generates");
    assert!(
        design.config.lanes * design.config.word_bits <= 64,
        "bus fits interpreter"
    );

    let mut sim = Interpreter::elaborate(&design.design, &design.design.top).expect("elaborates");

    // Fill the context ROMs with the compiler's real trigger words.
    let ctx = context_words(&design.compiled);
    sim.load_memory(
        "ctx_trig_main",
        &ctx.iter().map(|w| w[0]).collect::<Vec<_>>(),
    )
    .expect("ctx main");
    sim.load_memory(
        "ctx_trig_data",
        &ctx.iter().map(|w| w[1]).collect::<Vec<_>>(),
    )
    .expect("ctx data");
    sim.load_memory(
        "ctx_trig_weight",
        &ctx.iter().map(|w| w[2]).collect::<Vec<_>>(),
    )
    .expect("ctx weight");

    // Reset and start.
    sim.poke("rst", 1).expect("poke");
    sim.clock().expect("clock");
    sim.poke("rst", 0).expect("poke");
    assert_eq!(sim.read("done").expect("read"), 1, "idle before start");
    sim.poke("start", 1).expect("poke");
    sim.clock().expect("clock");
    sim.poke("start", 0).expect("poke");
    assert_eq!(sim.read("done").expect("read"), 0, "busy after start");

    // Run; collect DRAM request addresses.
    let mut dram_addrs = Vec::new();
    let mut completed_at = None;
    for cycle in 0..20_000u64 {
        if sim.read("dram_req").expect("read") == 1 {
            dram_addrs.push(sim.read("dram_addr").expect("read"));
        }
        if sim.read("done").expect("read") == 1 {
            completed_at = Some(cycle);
            break;
        }
        sim.clock().expect("clock");
    }
    let completed_at = completed_at.expect("accelerator must raise done");
    assert!(completed_at > 2, "completion cannot be instant");
    assert!(
        !dram_addrs.is_empty(),
        "the main AGU must issue DRAM traffic"
    );
    // The first fetch targets the input segment at offset 0.
    assert_eq!(dram_addrs[0], 0, "first fetch reads the input segment");
    // Addresses within one burst are consecutive.
    let consecutive = dram_addrs.windows(2).filter(|w| w[1] == w[0] + 1).count();
    assert!(
        consecutive >= dram_addrs.len() / 2,
        "main AGU bursts should be mostly sequential"
    );
}

#[test]
fn top_coordinator_walks_all_phases() {
    let net = parse_network(SRC).expect("parses");
    let design = generate(&net, &Budget::Medium).expect("generates");
    let mut sim = Interpreter::elaborate(&design.design, &design.design.top).expect("elaborates");
    let phases = design.compiled.folding.phases.len() as u64;
    let ctx = context_words(&design.compiled);
    for (slot, rom) in ["ctx_trig_main", "ctx_trig_data", "ctx_trig_weight"]
        .iter()
        .enumerate()
    {
        let words: Vec<u64> = ctx.iter().map(|w| w[slot]).collect();
        sim.load_memory(rom, &words).expect("ctx");
    }
    sim.poke("rst", 1).expect("poke");
    sim.clock().expect("clock");
    sim.poke("rst", 0).expect("poke");
    sim.poke("start", 1).expect("poke");
    sim.clock().expect("clock");
    sim.poke("start", 0).expect("poke");

    let mut max_phase = 0u64;
    for _ in 0..20_000u64 {
        // Hierarchical read into the coordinator instance.
        max_phase = max_phase.max(sim.read("phase_w").expect("read"));
        if sim.read("done").expect("read") == 1 {
            break;
        }
        sim.clock().expect("clock");
    }
    assert_eq!(
        max_phase,
        phases - 1,
        "the coordinator must visit every phase"
    );
}
