//! Integration of the training-iteration planner with the simulator and
//! the analytic training stats.

use deepburning::baselines::zoo;
use deepburning::compiler::plan_training;
use deepburning::core::{generate, Budget};
use deepburning::model::training_stats;
use deepburning::sim::{simulate_folding, simulate_timing, TimingParams};

#[test]
fn training_costs_more_than_inference_everywhere() {
    for bench in [zoo::mnist(), zoo::cifar(), zoo::ann1()] {
        let design = generate(&bench.network, &Budget::Medium).expect("generates");
        let fwd = simulate_timing(&design.compiled, &TimingParams::default()).total_cycles;
        let plan = plan_training(&bench.network, &design.config).expect("plans");
        let train =
            simulate_folding(&plan, design.config.lanes, &TimingParams::default()).total_cycles;
        assert!(
            train > fwd * 2,
            "{}: training ({train}) should cost >2x inference ({fwd})",
            bench.name
        );
        assert!(
            train < fwd * 12,
            "{}: training ({train}) implausibly above inference ({fwd})",
            bench.name
        );
    }
}

#[test]
fn training_plan_work_matches_analysis() {
    for bench in [zoo::mnist(), zoo::ann0()] {
        let design = generate(&bench.network, &Budget::Medium).expect("generates");
        let plan = plan_training(&bench.network, &design.config).expect("plans");
        let work = plan.total_work();
        let ts = training_stats(&bench.network).expect("stats");
        assert_eq!(
            work.macs,
            ts.forward.macs + ts.backward_macs + ts.update_ops,
            "{}",
            bench.name
        );
    }
}

#[test]
fn more_lanes_speed_up_training_too() {
    let bench = zoo::cifar();
    let db = generate(&bench.network, &Budget::Medium).expect("generates");
    let dbl = generate(&bench.network, &Budget::Large).expect("generates");
    let t_db = simulate_folding(
        &plan_training(&bench.network, &db.config).expect("plans"),
        db.config.lanes,
        &TimingParams::default(),
    )
    .total_cycles;
    let t_dbl = simulate_folding(
        &plan_training(&bench.network, &dbl.config).expect("plans"),
        dbl.config.lanes,
        &TimingParams::default(),
    )
    .total_cycles;
    assert!(t_dbl < t_db, "DB-L training {t_dbl} vs DB {t_db}");
}
