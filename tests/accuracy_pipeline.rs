//! Integration of training, reference execution and the bit-true
//! functional simulator — the accuracy pipeline behind Fig. 10, kept small
//! enough for debug-mode CI.

use deepburning::baselines::{hopfield_weights, train_ann, zoo};
use deepburning::compiler::{generate_luts, CompilerConfig};
use deepburning::fixed::QFormat;
use deepburning::sim::{functional_forward, functional_forward_all};
use deepburning::tensor::{forward, forward_all, relative_accuracy, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_ann0_survives_quantization() {
    let mut rng = StdRng::seed_from_u64(7);
    let model = train_ann(zoo::ann0(), 150, &mut rng);
    let cfg = CompilerConfig::default();
    let luts = generate_luts(&model.bench.network, &cfg).expect("luts");
    let mut sw = 0.0;
    let mut hw = 0.0;
    for (x, golden) in &model.regression_test {
        let y_sw = forward(&model.bench.network, &model.weights, x).expect("forward");
        let y_hw = functional_forward(&model.bench.network, &model.weights, x, &luts, cfg.format)
            .expect("functional sim");
        sw += relative_accuracy(y_sw.as_slice(), golden);
        hw += relative_accuracy(y_hw.as_slice(), golden);
    }
    let n = model.regression_test.len() as f64;
    let (sw, hw) = (sw / n, hw / n);
    assert!(sw > 90.0, "software accuracy {sw}");
    assert!(
        (sw - hw).abs() < 5.0,
        "fixed-point delta too large: sw {sw} vs hw {hw}"
    );
}

#[test]
fn hopfield_recall_matches_between_engines() {
    let bench = zoo::hopfield();
    let pattern: Vec<f32> = (0..32)
        .map(|i| if i % 4 == 0 { 1.0 } else { -1.0 })
        .collect();
    let ws = hopfield_weights(std::slice::from_ref(&pattern));
    let cfg = CompilerConfig::default();
    let luts = generate_luts(&bench.network, &cfg).expect("luts");
    let mut probe = pattern.clone();
    for i in [2, 9, 21] {
        probe[i] = -probe[i];
    }
    let input = Tensor::vector(&probe);
    let sw = forward_all(&bench.network, &ws, &input).expect("forward");
    let hw = functional_forward_all(&bench.network, &ws, &input, &luts, cfg.format)
        .expect("functional sim");
    let agree = |t: &Tensor| {
        t.as_slice()
            .iter()
            .zip(&pattern)
            .filter(|(a, b)| a.signum() == b.signum())
            .count()
    };
    let (sw_agree, hw_agree) = (agree(&sw["settle"]), agree(&hw["settle"]));
    assert!(sw_agree >= 30, "software recall {sw_agree}/32");
    assert!(
        (sw_agree as i64 - hw_agree as i64).abs() <= 2,
        "engines disagree: {sw_agree} vs {hw_agree}"
    );
}

#[test]
fn wider_formats_strictly_reduce_quantization_error() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = train_ann(zoo::ann2(), 100, &mut rng);
    let formats = [
        (QFormat::Q4_4, 32usize),
        (QFormat::Q8_8, 64),
        (QFormat::Q16_16, 256),
    ];
    let mut errors = Vec::new();
    for (fmt, entries) in formats {
        let cfg = CompilerConfig {
            format: fmt,
            lut_entries: entries,
            ..CompilerConfig::default()
        };
        let luts = generate_luts(&model.bench.network, &cfg).expect("luts");
        let mut err = 0.0;
        for (x, _) in &model.regression_test {
            let y_sw = forward(&model.bench.network, &model.weights, x).expect("forward");
            let y_hw = functional_forward(&model.bench.network, &model.weights, x, &luts, fmt)
                .expect("functional sim");
            err += 100.0 - relative_accuracy(y_hw.as_slice(), y_sw.as_slice());
        }
        errors.push(err / model.regression_test.len() as f64);
    }
    assert!(
        errors[0] >= errors[1] && errors[1] >= errors[2],
        "errors must shrink with width: {errors:?}"
    );
    assert!(
        errors[2] < 0.1,
        "Q16.16 error {:.4} should be tiny",
        errors[2]
    );
}

#[test]
fn cmac_engines_agree() {
    let mut rng = StdRng::seed_from_u64(5);
    let model = deepburning::baselines::train_cmac(150, &mut rng);
    let cfg = CompilerConfig::default();
    let luts = generate_luts(&model.bench.network, &cfg).expect("luts");
    for (x, _) in model.regression_test.iter().take(10) {
        let y_sw = forward(&model.bench.network, &model.weights, x).expect("forward");
        let y_hw = functional_forward(&model.bench.network, &model.weights, x, &luts, cfg.format)
            .expect("functional sim");
        let acc = relative_accuracy(y_hw.as_slice(), y_sw.as_slice());
        assert!(acc > 98.0, "engines diverge: {acc}");
    }
}
