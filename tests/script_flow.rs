//! Integration of the descriptive-script front end with the generator:
//! scripts in (including the paper's Fig. 4 fragment), accelerators out.

use deepburning::core::{generate, Budget};
use deepburning::model::{parse_network, ScriptError};

#[test]
fn fig4_style_script_generates() {
    let src = r#"
    name: "fig4"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 28 width: 28 } }
    layers {
      name: "conv1"
      type: CONVOLUTION
      bottom: "data"
      top: "conv1"
      param {
        num_output: 20
        kernel_size: 5
        stride: 1 }
      connect {
        name: "c2p1"
        direction: forward
        type: full_per_channel }
    }
    layers {
      name: "pool1"
      type: POOLING
      bottom: "conv1"
      top: "pool1"
      pooling_param {
        pool: MAX
        kernel_size: 2
        stride: 2
      }
    }
    layers { name: "ip1" type: INNER_PRODUCT bottom: "pool1" top: "ip1"
             param { num_output: 64 } }
    layers {
      name: "relu1"
      type: RELU
      bottom: "ip1"
      top: "ip1"
      connect {
        name: "p2f2"
        direction: recurrent
        type: file_specified }
    }
    "#;
    let net = parse_network(src).expect("parses");
    assert!(net.is_recurrent());
    let design = generate(&net, &Budget::Medium).expect("generates");
    assert!(design.lint.is_clean());
    assert!(design.verilog.contains("module fig4_accelerator"));
}

#[test]
fn recurrent_script_gets_tanh_table() {
    let src = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 16 height: 1 width: 1 } }
    layers { name: "rec" type: RECURRENT bottom: "data" top: "rec"
             recurrent_param { num_output: 16 steps: 4 } }
    "#;
    let net = parse_network(src).expect("parses");
    let design = generate(&net, &Budget::Small).expect("generates");
    assert!(design.compiled.luts.contains_key("tanh"));
    assert!(design.verilog.contains("approx_lut"));
}

#[test]
fn syntax_and_semantic_errors_are_distinguished() {
    // Syntax: unclosed block.
    match parse_network("layers { name: \"x\"") {
        Err(ScriptError::Parse(_)) => {}
        other => panic!("expected parse error, got {other:?}"),
    }
    // Semantics: undefined blob.
    let src = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 4 width: 4 } }
    layers { name: "fc" type: FC bottom: "ghost" top: "fc"
             param { num_output: 2 } }
    "#;
    match parse_network(src) {
        Err(ScriptError::Network(_)) => {}
        other => panic!("expected network error, got {other:?}"),
    }
}

#[test]
fn lrn_script_gets_per_layer_factor_table_and_unit() {
    let src = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 8 height: 12 width: 12 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 8 kernel_size: 3 stride: 1 } }
    layers { name: "norm" type: LRN bottom: "conv" top: "norm"
             lrn_param { local_size: 5 alpha: 0.0001 beta: 0.75 } }
    "#;
    let net = parse_network(src).expect("parses");
    let design = generate(&net, &Budget::Medium).expect("generates");
    assert!(design.compiled.luts.contains_key("lrn:norm"));
    assert!(design
        .resources
        .items
        .iter()
        .any(|(n, _)| n.contains("LRN unit")));
}
