//! End-to-end acceptance tests for the instrumentation layer: QFormat
//! overrides stay differentially clean, the tracer captures the full
//! pipeline, and a forced RTL divergence yields an artifact bundle.

use deepburning_bench::write_divergence_bundle;
use deepburning_core::{derive_config_for_format, generate, generate_with_config, Budget};
use deepburning_fixed::QFormat;
use deepburning_model::{parse_network, Network};
use deepburning_sim::{diff_design, DiffOptions};
use deepburning_tensor::{Init, Tensor, WeightSet};
use deepburning_trace as trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_net() -> Network {
    parse_network(
        r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 6 height: 1 width: 1 } }
        layers { name: "h" type: FC bottom: "data" top: "h"
                 param { num_output: 10 } }
        layers { name: "relu" type: RELU bottom: "h" top: "h" }
        layers { name: "o" type: FC bottom: "h" top: "o"
                 param { num_output: 4 } }
        "#,
    )
    .expect("parses")
}

fn fixture(net: &Network, seed: u64) -> (WeightSet, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ws = WeightSet::init(net, Init::Xavier, &mut rng).expect("init");
    let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
    (ws, input)
}

/// Satellite: non-default quantisation formats flow from the budget
/// derivation through generation and stay clean under the differential
/// checker — Q4.12 (precision-heavy) and Q12.4 (range-heavy).
#[test]
fn qformat_overrides_diff_clean() {
    let net = small_net();
    let (ws, input) = fixture(&net, 41);
    for (frac, label) in [(12u32, "Q4.12"), (4u32, "Q12.4")] {
        let fmt = QFormat::new(16, frac).expect("valid format");
        let cfg = derive_config_for_format(&Budget::Small, fmt);
        assert_eq!(cfg.format, fmt, "{label}: override must stick");
        let design = generate_with_config(&net, &Budget::Small, &cfg).expect("generates");
        assert_eq!(design.compiled.config.format, fmt, "{label}");
        let report =
            diff_design(&design, &net, &ws, &input, &DiffOptions::default()).expect("diff runs");
        assert!(report.is_clean(), "{label} diverged:\n{report}");
        assert!(report.rtl_checked() > 0, "{label}: rtl view must run");
    }
}

/// Tentpole: one tracer installed around the whole pipeline captures
/// compiler stages, generator stages and interpreter work, and both
/// export sinks are valid.
#[test]
fn pipeline_trace_is_complete_and_valid() {
    let net = small_net();
    let (ws, input) = fixture(&net, 42);
    let tracer = trace::Tracer::new();
    {
        let _session = trace::install(&tracer);
        let design = generate(&net, &Budget::Small).expect("generates");
        let report =
            diff_design(&design, &net, &ws, &input, &DiffOptions::default()).expect("diff runs");
        assert!(report.is_clean(), "{report}");
    }
    let events = trace::validate_chrome_trace(&tracer.chrome_trace()).expect("valid trace");
    assert!(events > 0);
    let metrics = tracer.metrics();
    let spans = metrics
        .get("spans")
        .and_then(|s| s.as_arr())
        .expect("spans");
    for required in ["core.generate", "compiler.compile", "sim.diff"] {
        assert!(
            spans
                .iter()
                .any(|s| s.get("name").and_then(|n| n.as_str()) == Some(required)),
            "span {required} missing"
        );
    }
    let counters = metrics
        .get("counters")
        .and_then(|c| c.as_obj())
        .expect("counters");
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.0)
    };
    assert!(counter("rtl.evals") > 0.0, "interpreter eval counter");
    assert!(counter("compiler.phases") > 0.0, "compiler counter");
}

/// Tentpole: a forced Functional↔RTL divergence produces the artifact
/// bundle — layer-audit JSON naming the diverging layer plus VCD
/// waveforms of the blocks that layer exercised.
#[test]
fn forced_divergence_writes_bundle() {
    let net = small_net();
    let (ws, input) = fixture(&net, 43);
    let design = generate(&net, &Budget::Small).expect("generates");
    let opts = DiffOptions {
        inject_rtl_fault: Some(1), // layer index 1 = "h"
        ..DiffOptions::default()
    };
    let report = diff_design(&design, &net, &ws, &input, &opts).expect("diff runs");
    assert!(!report.is_clean(), "fault injection must diverge");
    assert_eq!(report.first_divergence().expect("divergence").layer, "h");

    let dir = std::env::temp_dir().join(format!("db-observability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = write_divergence_bundle(
        &dir,
        "observability @ DB-S",
        &net,
        &ws,
        &input,
        &design.compiled.luts,
        design.compiled.config.format,
        design.compiled.config.lanes,
        &opts,
        &report,
    )
    .expect("bundle writes");
    let has = |ext: &str| {
        written
            .iter()
            .any(|p| p.extension().is_some_and(|e| e == ext))
    };
    assert!(has("json"), "audit json in {written:?}");
    assert!(has("vcd"), "waveform in {written:?}");
    let audit = written
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .unwrap();
    let doc = trace::json::Json::parse(&std::fs::read_to_string(audit).expect("readable"))
        .expect("valid json");
    assert!(matches!(
        doc.get("clean"),
        Some(trace::json::Json::Bool(false))
    ));
    assert!(doc
        .get("divergences")
        .and_then(|d| d.as_arr())
        .is_some_and(|d| !d.is_empty()));
    let _ = std::fs::remove_dir_all(&dir);
}
