//! The paper's headline comparisons, asserted as invariants: who wins, in
//! which direction, on which benchmarks. These guard the shapes of
//! Figs. 8/9 and Table 3 against regressions in the models.

use deepburning::baselines::{
    all_benchmarks, custom_design, custom_timing_params, CpuModel, ZhangFpga15,
};
use deepburning::core::{generate, Budget};
use deepburning::sim::{inference_energy, simulate_timing, EnergyParams, TimingParams};

fn db_seconds(bench: &deepburning::baselines::Benchmark, budget: Budget) -> f64 {
    let d = generate(&bench.network, &budget).expect("generates");
    simulate_timing(&d.compiled, &TimingParams::default()).seconds(d.clock_hz())
}

#[test]
fn fig8_cpu_loses_to_db_on_most_benchmarks() {
    let cpu = CpuModel::xeon_2_4ghz();
    let mut db_wins = 0;
    let mut total = 0;
    let mut best = 0.0f64;
    for bench in all_benchmarks() {
        let t_db = db_seconds(&bench, Budget::Medium);
        let t_cpu = cpu.forward_time(&bench.network).expect("cpu time");
        total += 1;
        if t_db < t_cpu {
            db_wins += 1;
        }
        best = best.max(t_cpu / t_db);
    }
    assert!(db_wins * 4 >= total * 3, "DB won only {db_wins}/{total}");
    // "up to 4.7x speed-up" — we accept 3x..8x for the max.
    assert!((3.0..8.0).contains(&best), "max speedup {best}");
}

#[test]
fn fig8_dbl_beats_db_especially_on_cnns() {
    for bench in all_benchmarks() {
        let db = db_seconds(&bench, Budget::Medium);
        let dbl = db_seconds(&bench, Budget::Large);
        assert!(dbl <= db * 1.001, "{}: DB-L slower than DB", bench.name);
    }
    // The CNNs must see a substantial gain.
    for name in ["Alexnet", "NiN", "Cifar"] {
        let bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == name)
            .expect("zoo member");
        let ratio = db_seconds(&bench, Budget::Medium) / db_seconds(&bench, Budget::Large);
        assert!(ratio > 2.0, "{name}: DB/DB-L only {ratio:.2}x");
    }
}

#[test]
fn fig8_dbl_alexnet_comparable_to_zhang() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Alexnet")
        .expect("zoo member");
    let dbl = db_seconds(&bench, Budget::Large);
    // "comparable performance to that of Custom and [7] (~20ms)" — within
    // 3x of the literature point.
    assert!(
        dbl < ZhangFpga15::LATENCY_S * 3.0,
        "DB-L AlexNet {dbl}s vs Zhang {}s",
        ZhangFpga15::LATENCY_S
    );
}

#[test]
fn fig9_energy_ordering() {
    let cpu = CpuModel::xeon_2_4ghz();
    let mut ratios = Vec::new();
    for bench in all_benchmarks() {
        let d = generate(&bench.network, &Budget::Medium).expect("generates");
        let t = simulate_timing(&d.compiled, &TimingParams::default());
        let e_db = inference_energy(&d, &t, &EnergyParams::default()).total_j;
        let e_cpu = cpu.forward_energy(&bench.network).expect("cpu energy");
        assert!(
            e_cpu > e_db * 5.0,
            "{}: CPU energy only {}x DB",
            bench.name,
            e_cpu / e_db
        );
        ratios.push(e_cpu / e_db);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // "about 58x more energy than DB on average" — accept 25x..120x.
    assert!(
        (25.0..120.0).contains(&mean),
        "mean CPU/DB energy {mean:.1}x"
    );
}

#[test]
fn fig9_custom_cheaper_than_db() {
    let mut ratios = Vec::new();
    for bench in all_benchmarks() {
        let db = generate(&bench.network, &Budget::Medium).expect("generates");
        let cu = custom_design(&bench, &Budget::Medium).expect("custom");
        let t_db = simulate_timing(&db.compiled, &TimingParams::default());
        let t_cu = simulate_timing(&cu.compiled, &custom_timing_params());
        let e_db = inference_energy(&db, &t_db, &EnergyParams::default()).total_j;
        let e_cu = inference_energy(&cu, &t_cu, &EnergyParams::default()).total_j;
        assert!(
            e_cu <= e_db * 1.05,
            "{}: Custom burns more than DB",
            bench.name
        );
        ratios.push(e_db / e_cu);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // "DB consumes 1.8x more energy than Custom" — accept 1.2x..2.5x.
    assert!(
        (1.2..2.5).contains(&mean),
        "mean DB/Custom energy {mean:.2}x"
    );
}

#[test]
fn table3_db_uses_more_logic_than_custom_equal_dsp() {
    for bench in all_benchmarks() {
        let db = generate(&bench.network, &Budget::Medium).expect("generates");
        let cu = custom_design(&bench, &Budget::Medium).expect("custom");
        // The datapaths match; the hand design's leaner control path may
        // buy it a few extra lanes under the same envelope.
        assert!(
            cu.resources.total.dsp >= db.resources.total.dsp,
            "{}: Custom has fewer DSPs than DB",
            bench.name
        );
        assert!(
            cu.resources.total.dsp <= db.resources.total.dsp * 13 / 10,
            "{}: Custom DSP advantage implausibly large",
            bench.name
        );
        assert!(
            db.resources.total.lut >= cu.resources.total.lut,
            "{}: DB LUTs below Custom",
            bench.name
        );
    }
}
