//! End-to-end coverage of the inception (GoogLeNet-style) layer — the
//! block-mapping table's "Inception layer: pooling-unit + synergy neuron +
//! accumulators" — through every stage: script, reference execution,
//! fixed-point simulation, generation and timing.

use deepburning::compiler::{generate_luts, CompilerConfig};
use deepburning::core::{generate, Budget};
use deepburning::model::parse_network;
use deepburning::sim::{functional_forward, simulate_timing, TimingParams};
use deepburning::tensor::{forward, tensor_accuracy, Init, Tensor, WeightSet};
use rand::SeedableRng;

const SRC: &str = r#"
name: "inception-slice"
layers { name: "data" type: INPUT top: "data"
         input_param { channels: 8 height: 14 width: 14 } }
layers { name: "incep" type: INCEPTION bottom: "data" top: "incep"
         inception_param { c1x1: 8 c3x3: 12 c5x5: 4 cpool: 4 } }
layers { name: "relu" type: RELU bottom: "incep" top: "incep" }
layers { name: "pool" type: POOLING bottom: "incep" top: "pool"
         pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "fc" type: FC bottom: "pool" top: "fc"
         param { num_output: 10 } }
"#;

#[test]
fn inception_shapes_and_generation() {
    let net = parse_network(SRC).expect("parses");
    let shapes = net.infer_shapes().expect("shapes");
    assert_eq!(shapes["incep"].to_string(), "28x14x14"); // 8+12+4+4 channels
    let design = generate(&net, &Budget::Medium).expect("generates");
    assert!(design.lint.is_clean(), "{}", design.lint);
    // The inception block pulls in the pooling unit.
    assert!(design
        .resources
        .items
        .iter()
        .any(|(n, _)| n.contains("pooling unit")));
    let timing = simulate_timing(&design.compiled, &TimingParams::default());
    assert!(timing.total_cycles > 0);
}

#[test]
fn inception_fixed_point_tracks_reference() {
    let net = parse_network(SRC).expect("parses");
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let ws = WeightSet::init(&net, Init::Uniform(0.2), &mut rng).expect("init");
    let cfg = CompilerConfig::default();
    let luts = generate_luts(&net, &cfg).expect("luts");
    let input = Tensor::from_fn(net.input_shape(), |c, y, x| ((c + y + x) % 7) as f32 / 7.0);
    let golden = forward(&net, &ws, &input).expect("reference");
    let approx = functional_forward(&net, &ws, &input, &luts, cfg.format).expect("fx sim");
    assert_eq!(approx.shape(), golden.shape());
    let acc = tensor_accuracy(&approx, &golden);
    assert!(acc > 97.0, "inception fixed-point accuracy {acc}%");
}

#[test]
fn inception_weight_layout_validates() {
    let net = parse_network(SRC).expect("parses");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
    assert!(ws.validate(&net).is_ok());
    // Branch kernel layout: 1x1 + 3x3 + 5x5 + pool-proj weights.
    let lw = ws.get("incep").expect("weights");
    let ci = 8;
    assert_eq!(lw.w.len(), 8 * ci + 12 * ci * 9 + 4 * ci * 25 + 4 * ci);
    assert_eq!(lw.b.len(), 28);
}
