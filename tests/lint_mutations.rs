//! Failure injection: corrupt a known-good generated design in targeted
//! ways and check that the structural lint (our stand-in for RTL
//! verification) catches every mutation. A lint that passes everything is
//! worthless — these tests pin its sensitivity.

use deepburning::baselines::zoo;
use deepburning::core::{generate, Budget};
use deepburning::verilog::{lint_design, Design, Expr, Item, NetDecl, Port, PortDir};

fn good_design() -> Design {
    generate(&zoo::mnist().network, &Budget::Medium)
        .expect("generates")
        .design
}

fn top_index(design: &Design) -> usize {
    design
        .modules
        .iter()
        .position(|m| m.name == design.top)
        .expect("top module present")
}

#[test]
fn baseline_is_clean() {
    assert!(lint_design(&good_design()).is_clean());
}

#[test]
fn detects_deleted_driver() {
    let mut design = good_design();
    let ti = top_index(&design);
    // Remove the first continuous assign that drives a whole net.
    let pos = design.modules[ti]
        .items
        .iter()
        .position(|i| {
            matches!(
                i,
                Item::Assign {
                    lhs: Expr::Id(_),
                    ..
                }
            )
        })
        .expect("an assign exists");
    design.modules[ti].items.remove(pos);
    assert!(
        !lint_design(&design).is_clean(),
        "deleting a driver must fail lint"
    );
}

#[test]
fn detects_double_driver() {
    let mut design = good_design();
    let ti = top_index(&design);
    let dup = design.modules[ti]
        .items
        .iter()
        .find(|i| {
            matches!(
                i,
                Item::Assign {
                    lhs: Expr::Id(_),
                    ..
                }
            )
        })
        .expect("an assign exists")
        .clone();
    design.modules[ti].items.push(dup);
    let report = lint_design(&design);
    assert!(report
        .errors()
        .any(|e| e.message.contains("whole-net drivers")));
}

#[test]
fn detects_dangling_reference() {
    let mut design = good_design();
    let ti = top_index(&design);
    design.modules[ti].items.push(Item::Assign {
        lhs: Expr::id("dram_wdata"),
        rhs: Expr::id("signal_that_does_not_exist"),
    });
    let report = lint_design(&design);
    assert!(report
        .errors()
        .any(|e| e.message.contains("undeclared identifier")));
}

#[test]
fn detects_port_width_corruption() {
    let mut design = good_design();
    // Shrink a port of an instantiated module: every connection to it now
    // mismatches.
    let victim = design
        .modules
        .iter()
        .position(|m| m.name != design.top && m.ports.iter().any(|p| p.width > 1))
        .expect("a leaf module with vector ports");
    let port = design.modules[victim]
        .ports
        .iter()
        .position(|p| p.width > 1)
        .expect("vector port");
    design.modules[victim].ports[port].width -= 1;
    assert!(
        !lint_design(&design).is_clean(),
        "port width corruption must fail lint"
    );
}

#[test]
fn detects_removed_module() {
    let mut design = good_design();
    let victim = design
        .modules
        .iter()
        .position(|m| m.name != design.top)
        .expect("a leaf module");
    design.modules.remove(victim);
    let report = lint_design(&design);
    assert!(report
        .errors()
        .any(|e| e.message.contains("unknown module")));
}

#[test]
fn detects_stolen_output_port() {
    let mut design = good_design();
    let ti = top_index(&design);
    // Add an output port nothing drives.
    design.modules[ti].port(Port {
        name: "orphan_out".into(),
        dir: PortDir::Output,
        width: 8,
        signed: false,
    });
    let report = lint_design(&design);
    assert!(report.errors().any(|e| e.message.contains("never driven")));
}

#[test]
fn warns_on_dead_net() {
    let mut design = good_design();
    let ti = top_index(&design);
    design.modules[ti]
        .items
        .push(Item::Net(NetDecl::wire("completely_unused", 4)));
    let report = lint_design(&design);
    // Warning, not error.
    assert!(report.is_clean());
    assert!(report
        .issues
        .iter()
        .any(|i| i.message.contains("never used")));
}
