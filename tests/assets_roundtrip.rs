//! The shipped `.prototxt` assets must parse to the same networks the zoo
//! builds programmatically — they are the user-facing face of the zoo.

use deepburning::baselines::zoo;
use deepburning::model::parse_network;

fn asset(name: &str) -> String {
    let path = format!("{}/assets/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

#[test]
fn mnist_asset_matches_zoo() {
    let from_script = parse_network(&asset("mnist.prototxt")).expect("parses");
    let from_zoo = zoo::mnist().network;
    assert_eq!(from_script.name(), from_zoo.name());
    assert_eq!(
        from_script.infer_shapes().expect("shapes"),
        from_zoo.infer_shapes().expect("shapes")
    );
    assert_eq!(
        deepburning::model::network_stats(&from_script)
            .expect("stats")
            .total,
        deepburning::model::network_stats(&from_zoo)
            .expect("stats")
            .total
    );
}

#[test]
fn cifar_asset_matches_zoo() {
    let from_script = parse_network(&asset("cifar.prototxt")).expect("parses");
    let from_zoo = zoo::cifar().network;
    assert_eq!(
        from_script.infer_shapes().expect("shapes"),
        from_zoo.infer_shapes().expect("shapes")
    );
}

#[test]
fn cmac_asset_matches_zoo_and_is_recurrent() {
    let from_script = parse_network(&asset("cmac.prototxt")).expect("parses");
    let from_zoo = zoo::cmac().network;
    assert!(from_script.is_recurrent());
    assert_eq!(
        from_script.output_shape().expect("shape"),
        from_zoo.output_shape().expect("shape")
    );
    let rec = from_script
        .recurrent_connections()
        .next()
        .expect("recurrent edge");
    assert_eq!(rec.to, "assoc");
}

#[test]
fn hopfield_asset_matches_zoo() {
    let from_script = parse_network(&asset("hopfield.prototxt")).expect("parses");
    let from_zoo = zoo::hopfield().network;
    assert!(from_script.is_recurrent());
    assert_eq!(
        deepburning::model::network_stats(&from_script)
            .expect("stats")
            .total
            .macs,
        deepburning::model::network_stats(&from_zoo)
            .expect("stats")
            .total
            .macs
    );
}

#[test]
fn ann1_asset_matches_zoo() {
    let from_script = parse_network(&asset("ann1_jpeg.prototxt")).expect("parses");
    let from_zoo = zoo::ann1().network;
    assert_eq!(
        deepburning::model::network_stats(&from_script)
            .expect("stats")
            .total,
        deepburning::model::network_stats(&from_zoo)
            .expect("stats")
            .total
    );
}

#[test]
fn alexnet_asset_matches_zoo() {
    let from_script = parse_network(&asset("alexnet.prototxt")).expect("parses");
    let from_zoo = zoo::alexnet().network;
    assert_eq!(
        from_script.infer_shapes().expect("shapes"),
        from_zoo.infer_shapes().expect("shapes")
    );
    assert_eq!(
        deepburning::model::network_stats(&from_script)
            .expect("stats")
            .total
            .macs,
        deepburning::model::network_stats(&from_zoo)
            .expect("stats")
            .total
            .macs
    );
}

#[test]
fn every_asset_generates() {
    for name in [
        "mnist.prototxt",
        "cifar.prototxt",
        "cmac.prototxt",
        "hopfield.prototxt",
        "ann1_jpeg.prototxt",
    ] {
        let net = parse_network(&asset(name)).expect("parses");
        let design = deepburning::core::generate(&net, &deepburning::core::Budget::Medium)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(design.lint.is_clean(), "{name}");
    }
}
