//! End-to-end integration: every zoo benchmark runs the full NN-Gen flow
//! (parse/build → compile → RTL → lint → resources) on every budget tier.

use deepburning::baselines::all_benchmarks;
use deepburning::core::{generate, Budget};
use deepburning::verilog::{lint_design, Severity};

#[test]
fn every_benchmark_generates_on_every_tier() {
    for bench in all_benchmarks() {
        for budget in [Budget::Small, Budget::Medium, Budget::Large] {
            let design = generate(&bench.network, &budget)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name, budget.tag()));
            assert!(
                design.lint.is_clean(),
                "{} on {}: {}",
                bench.name,
                budget.tag(),
                design.lint
            );
            assert!(
                design.fits.0,
                "{} on {} does not fit (utilisation {:.2})",
                bench.name,
                budget.tag(),
                design.fits.1
            );
        }
    }
}

#[test]
fn generated_verilog_is_substantial_and_relintable() {
    let bench = deepburning::baselines::mnist();
    let design = generate(&bench.network, &Budget::Medium).expect("generates");
    // The emitted text contains every instantiated module.
    assert!(design.verilog.lines().count() > 300);
    assert!(design.verilog.contains("module mnist_accelerator"));
    assert!(design.verilog.matches("endmodule").count() >= 10);
    // Re-linting the stored Design reproduces the clean verdict.
    let report = lint_design(&design.design);
    assert!(report.issues.iter().all(|i| i.severity != Severity::Error));
}

#[test]
fn generation_is_deterministic() {
    let bench = deepburning::baselines::cifar();
    let a = generate(&bench.network, &Budget::Medium).expect("generates");
    let b = generate(&bench.network, &Budget::Medium).expect("generates");
    assert_eq!(a.verilog, b.verilog);
    assert_eq!(a.resources.total, b.resources.total);
    assert_eq!(
        a.compiled.folding.phases.len(),
        b.compiled.folding.phases.len()
    );
}

#[test]
fn phase_events_are_unique_and_ordered() {
    let bench = deepburning::baselines::alexnet();
    let design = generate(&bench.network, &Budget::Medium).expect("generates");
    let phases = &design.compiled.folding.phases;
    for (i, p) in phases.iter().enumerate() {
        assert_eq!(p.id, i, "phase ids must be dense and ordered");
    }
    let mut events: Vec<&str> = phases.iter().map(|p| p.event.as_str()).collect();
    let before = events.len();
    events.sort_unstable();
    events.dedup();
    assert_eq!(before, events.len(), "events must be unique");
}

#[test]
fn larger_budget_never_increases_phase_count() {
    for bench in all_benchmarks() {
        let m = generate(&bench.network, &Budget::Medium).expect("generates");
        let l = generate(&bench.network, &Budget::Large).expect("generates");
        assert!(
            l.compiled.folding.phases.len() <= m.compiled.folding.phases.len(),
            "{}: DB-L has more phases than DB",
            bench.name
        );
    }
}
