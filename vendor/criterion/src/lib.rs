//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a small wall-clock harness that is source compatible with the bench
//! targets (`harness = false`): [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are simple medians over a handful of timed batches —
//! enough to spot order-of-magnitude regressions locally, with none of
//! the statistical machinery of the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter, `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting one sample per configured batch.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up call keeps lazily-initialised state out of the
        // first sample.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.recorded.push(start.elapsed());
        }
    }
}

fn run_one<F>(group: &str, id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.recorded.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    bencher.recorded.sort_unstable();
    let median = bencher.recorded[bencher.recorded.len() / 2];
    let min = bencher.recorded[0];
    let max = bencher.recorded[bencher.recorded.len() - 1];
    println!(
        "  {label}: median {median:?} (min {min:?}, max {max:?}, {n} samples)",
        n = bencher.recorded.len()
    );
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // warm-up + 3 samples
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("mnist").id, "mnist");
    }
}
