//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors a dependency-free implementation of exactly the surface the
//! crates rely on: [`rngs::StdRng`] / [`rngs::SmallRng`] seeded through
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive numeric ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The engine is SplitMix64: deterministic, full-period over 2^64 and
//! statistically sound for test-data synthesis and weight initialisation.
//! It is **not** cryptographic, which matches how the workspace uses it
//! (seeded, reproducible pseudo-data only).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut iter = dest.chunks_exact_mut(8);
        for chunk in &mut iter {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = iter.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws a single uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        lo + (hi - lo) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small consecutive seeds land far apart in
            // the state space.
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    /// Same engine as [`StdRng`]; the distinction only matters for the
    /// real crate's performance trade-offs.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension trait providing a uniform in-place shuffle.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let g: f64 = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements almost surely move");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
