//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a small, dependency-light property-testing harness that is source
//! compatible with the constructs the test suites rely on:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! - [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`],
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_filter`, implemented for numeric ranges and tuples,
//! - [`collection::vec`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test name), and there is
//! **no shrinking** — a failing case reports the values that failed via
//! the assertion message instead. That trade keeps the harness tiny while
//! preserving the regression-catching power the suites need.

/// Runner configuration, case outcomes and the deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies while generating one case.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub(crate) fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// The case was rejected (filter/assume); it does not count.
        Reject(String),
    }

    impl TestCaseError {
        /// Convenience constructor for a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Convenience constructor for a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Mirror of `proptest::test_runner::Config` for the fields the
    /// workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on rejected cases before the run aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: generates cases until `config.cases` pass.
    ///
    /// # Panics
    ///
    /// Panics when a case fails (carrying the case index and seed for
    /// reproduction) or when too many cases are rejected.
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest {name}: too many rejected cases ({rejected}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case #{p} failed (seed {seed:#018x}):\n{msg}",
                        p = passed
                    );
                }
            }
        }
    }
}

/// Value-generation strategies and their combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A rejected generation attempt (filter predicate failed).
    #[derive(Debug, Clone, Copy)]
    pub struct Reject(pub &'static str);

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value, or [`Reject`] if the strategy's filters
        /// could not be satisfied.
        ///
        /// # Errors
        ///
        /// Returns [`Reject`] when a `prop_filter` predicate keeps
        /// failing for this strategy's draws.
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Discards values for which `f` is false, retrying a bounded
        /// number of times before rejecting the whole case.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> Result<O, Reject> {
            Ok((self.f)(self.inner.generate(rng)?))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Reject> {
            (self.f)(self.inner.generate(rng)?).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
            // Local retry keeps filters with a decent acceptance rate
            // cheap; a persistent miss bubbles up as a rejected case.
            for _ in 0..64 {
                let v = self.inner.generate(rng)?;
                if (self.f)(&v) {
                    return Ok(v);
                }
            }
            Err(Reject(self.reason))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    Ok(rng.0.gen_range(self.clone()))
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                    Ok(rng.0.gen_range(self.clone()))
                }
            }
        )+};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Ok(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Strategy for `Vec`s with lengths drawn from `size` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let n = rng.0.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The imports every property-test module pulls in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller) running
/// the body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_proptest(
                    &config,
                    stringify!($name),
                    |__pt_rng| {
                        $(
                            let $arg = match $crate::strategy::Strategy::generate(
                                &($strat),
                                __pt_rng,
                            ) {
                                Ok(v) => v,
                                Err(r) => {
                                    return Err($crate::test_runner::TestCaseError::reject(r.0));
                                }
                            };
                        )+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}\n{}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
            )));
        }
    }};
}

/// Skips the current case (without failing) when its precondition does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(v in arb_even().prop_filter("nonzero", |v| *v != 0)) {
            prop_assert!(v % 2 == 0, "expected even, got {v}");
            prop_assert!(v != 0);
        }

        #[test]
        fn flat_map_dependent_ranges(pair in (2u32..=32).prop_flat_map(|hi| (0..hi).prop_map(move |lo| (hi, lo)))) {
            let (hi, lo) = pair;
            prop_assert!(lo < hi);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec((0u32..10, 0u32..10), 1..8) ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn assume_skips_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failing_property_panics_with_seed() {
        crate::test_runner::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
